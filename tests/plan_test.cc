// Tests for join planning: literal ordering, builtin-mode awareness,
// enumeration fallbacks, the quantifier-specific plan parts, and the
// cost-based ordering mode (PlannerStats).
#include "eval/plan.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "eval/database.h"

namespace lps {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest() : program_(&store_) {
    Signature& sig = program_.signature();
    p1_ = *sig.Declare("p1", {Sort::kAtom});
    p2_ = *sig.Declare("p2", {Sort::kAtom, Sort::kAtom});
    ps_ = *sig.Declare("ps", {Sort::kSet});
    x_ = store_.MakeVariable("X", Sort::kAtom);
    y_ = store_.MakeVariable("Y", Sort::kAtom);
    z_ = store_.MakeVariable("Z", Sort::kAtom);
    xs_ = store_.MakeVariable("Xs", Sort::kSet);
  }

  TermStore store_;
  Program program_;
  PredicateId p1_, p2_, ps_;
  TermId x_, y_, z_, xs_;
};

TEST_F(PlanTest, BuiltinsWaitForTheirModes) {
  // h(K) :- p2(X, Y), add(X, Y, K): the scan must precede the builtin.
  Clause c;
  c.head = Literal{p1_, {z_}, true};
  c.body.push_back(Literal{kPredAdd, {x_, y_, z_}, true});
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const auto& steps = plan->free_plan.steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].kind, StepKind::kScan);
  EXPECT_EQ(steps[0].literal_index, 1u);
  EXPECT_EQ(steps[1].kind, StepKind::kBuiltin);
}

TEST_F(PlanTest, NegationLast) {
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{p1_, {x_}, false});  // not p1(X)
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  const auto& steps = plan->free_plan.steps;
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0].kind, StepKind::kScan);
  EXPECT_EQ(steps[1].kind, StepKind::kNegated);
}

TEST_F(PlanTest, UnboundHeadVarGetsEnumerationStep) {
  // p1(X) :- p1(a): X never bound by the body.
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{p1_, {store_.MakeConstant("a")}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  bool has_enum = false;
  for (const PlanStep& s : plan->free_plan.steps) {
    if (s.kind == StepKind::kEnumAtom && s.var == x_) has_enum = true;
  }
  EXPECT_TRUE(has_enum);
}

TEST_F(PlanTest, QuantifiedLiteralsClassified) {
  // ps(Xs) :- (forall x in Xs) p2(x, Y) & p1(Y):
  // p2 is quantified (contains x), p1 is free.
  Clause c;
  c.head = Literal{ps_, {xs_}, true};
  c.quantifiers.push_back(Quantifier{x_, xs_});
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  c.body.push_back(Literal{p1_, {y_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->quantified_literals, (std::vector<size_t>{0}));
  EXPECT_EQ(plan->free_literals, (std::vector<size_t>{1}));
  EXPECT_TRUE(plan->has_quantifiers);
  EXPECT_EQ(plan->range_vars_needed, (std::vector<TermId>{xs_}));
  // Y is bound by the free literal, so no seeding needed.
  EXPECT_TRUE(plan->seed_vars.empty());
}

TEST_F(PlanTest, SeedVarsForDivision) {
  // ps(Xs) :- (forall x in Xs) p2(x, Y): Y occurs only under the
  // quantifier -> division seeding.
  Clause c;
  c.head = Literal{ps_, {xs_}, true};
  c.quantifiers.push_back(Quantifier{x_, xs_});
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->seed_vars, (std::vector<TermId>{y_}));
  ASSERT_FALSE(plan->seed_plan.steps.empty());
  EXPECT_EQ(plan->seed_plan.steps[0].kind, StepKind::kScan);
}

TEST_F(PlanTest, EmptyBranchBindsRangeAndHeadVars) {
  Clause c;
  c.head = Literal{ps_, {xs_}, true};
  c.quantifiers.push_back(Quantifier{x_, xs_});
  c.body.push_back(Literal{p1_, {x_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan->empty_branch_plan.steps.size(), 1u);
  EXPECT_EQ(plan->empty_branch_plan.steps[0].kind, StepKind::kEnumSet);
  EXPECT_EQ(plan->empty_branch_plan.steps[0].var, xs_);
}

TEST_F(PlanTest, QuantifiedVarInHeadRejected) {
  // Definition 5 scopes quantified variables to the body.
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.quantifiers.push_back(Quantifier{x_, xs_});
  c.body.push_back(Literal{p1_, {x_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  EXPECT_EQ(plan.status().code(), StatusCode::kSafetyError);
}

TEST_F(PlanTest, QuantifierRangeUsingQuantifiedVarRejected) {
  TermId ys = store_.MakeVariable("Ys", Sort::kSet);
  TermId e = store_.MakeVariable("E", Sort::kAny);
  Clause c;
  c.head = Literal{ps_, {xs_}, true};
  c.quantifiers.push_back(Quantifier{e, xs_});
  c.quantifiers.push_back(Quantifier{y_, e});  // range = quantified var
  c.body.push_back(Literal{p1_, {y_}, true});
  (void)ys;
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  EXPECT_EQ(plan.status().code(), StatusCode::kSafetyError);
}

TEST_F(PlanTest, MostBoundLiteralScansFirst) {
  // p1(X) :- p2(X, Y), p2(a, X): the literal with the constant should
  // be scanned first (more bound positions).
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  c.body.push_back(Literal{p2_, {store_.MakeConstant("a"), x_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->free_plan.steps[0].literal_index, 1u);
}

TEST_F(PlanTest, GoalPlanFlagsDemandCandidates) {
  // p1 gains a rule; p2 stays extensional.
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{p2_, {x_, y_}, true});
  program_.AddClause(c);

  GoalPlan derived = BuildGoalPlan(store_, program_.signature(), program_,
                                   Literal{p1_, {x_}, true});
  EXPECT_TRUE(derived.demand_candidate);
  ASSERT_EQ(derived.body.steps.size(), 1u);
  EXPECT_EQ(derived.body.steps[0].kind, StepKind::kScan);

  GoalPlan edb = BuildGoalPlan(store_, program_.signature(), program_,
                               Literal{p2_, {x_, y_}, true});
  EXPECT_FALSE(edb.demand_candidate);
  EXPECT_NE(edb.demand_ineligible_reason.find("no rules"),
            std::string::npos);

  GoalPlan builtin = BuildGoalPlan(store_, program_.signature(), program_,
                                   Literal{kPredLt, {x_, y_}, true});
  EXPECT_FALSE(builtin.demand_candidate);
  EXPECT_NE(builtin.demand_ineligible_reason.find("builtin"),
            std::string::npos);
}

TEST_F(PlanTest, PlannerStatsEstimatesFromRelation) {
  Database db(&store_, &program_.signature());
  // 40 rows: 40 distinct first-column keys, 4 distinct second-column.
  for (int i = 0; i < 40; ++i) {
    db.AddTuple(p2_, {store_.MakeConstant("a" + std::to_string(i)),
                      store_.MakeConstant("b" + std::to_string(i % 4))});
  }
  db.relation(p2_).EnsureIndex(ColumnBit(0));
  db.relation(p2_).EnsureIndex(ColumnBit(1));

  RelationStats rs = db.relation(p2_).Stats();
  EXPECT_EQ(rs.live_rows, 40u);
  ASSERT_EQ(rs.masks.size(), 2u);

  PlannerStats stats = PlannerStats::FromDatabase(db);
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p2_, 0), 40.0);
  // Exact-mask indexes: average bucket size = rows / distinct keys.
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p2_, ColumnBit(0)), 1.0);
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p2_, ColumnBit(1)), 10.0);
  // No exact index for the combined mask: per-column selectivities
  // multiply, clamped below at one matching row.
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p2_, ColumnBit(0) | ColumnBit(1)),
                   1.0);
  // An absent relation scans empty unless marked rule-defined.
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p1_, 0), 0.0);
  stats.MarkDerived(p1_);
  EXPECT_DOUBLE_EQ(stats.EstimateScan(p1_, 0), PlannerStats::kUnknownRows);
}

TEST_F(PlanTest, CostOrderPicksSelectiveLiteralFirst) {
  // p1(X) :- hay(X, Y), pin(Y, Z): source order ties on the boundness
  // ladder, so the heuristic scans hay first. With statistics, pin's
  // two rows against hay's fifty flip the order.
  Signature& sig = program_.signature();
  PredicateId hay = *sig.Declare("hay", {Sort::kAtom, Sort::kAtom});
  PredicateId pin = *sig.Declare("pin", {Sort::kAtom, Sort::kAtom});
  Database db(&store_, &sig);
  for (int i = 0; i < 50; ++i) {
    db.AddTuple(hay, {store_.MakeConstant("h" + std::to_string(i)),
                      store_.MakeConstant("k" + std::to_string(i))});
  }
  db.AddTuple(pin, {store_.MakeConstant("k1"), store_.MakeConstant("v")});
  db.AddTuple(pin, {store_.MakeConstant("k2"), store_.MakeConstant("w")});

  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{hay, {x_, y_}, true});
  c.body.push_back(Literal{pin, {y_, z_}, true});

  auto legacy = BuildRulePlan(store_, sig, c);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(legacy->free_plan.steps[0].literal_index, 0u);
  EXPECT_FALSE(legacy->free_plan.reordered);
  EXPECT_EQ(legacy->free_plan.est_out, -1.0);
  EXPECT_EQ(legacy->free_plan.steps[0].est_rows, -1.0);

  PlannerStats stats = PlannerStats::FromDatabase(db);
  auto cost = BuildRulePlan(store_, sig, c, &stats);
  ASSERT_TRUE(cost.ok());
  ASSERT_EQ(cost->free_plan.steps.size(), 2u);
  EXPECT_EQ(cost->free_plan.steps[0].literal_index, 1u);  // pin first
  EXPECT_TRUE(cost->free_plan.reordered);
  EXPECT_DOUBLE_EQ(cost->free_plan.steps[0].est_rows, 2.0);
  EXPECT_GE(cost->free_plan.est_out, 0.0);
}

TEST_F(PlanTest, CostOrderIsDeterministic) {
  // The cost order is a pure function of (clause, statistics): no
  // iteration-order or address-dependent tie-breaks. Rebuilding the
  // plan must reproduce the identical step sequence and estimates.
  Signature& sig = program_.signature();
  PredicateId r1 = *sig.Declare("r1", {Sort::kAtom, Sort::kAtom});
  PredicateId r2 = *sig.Declare("r2", {Sort::kAtom, Sort::kAtom});
  PredicateId r3 = *sig.Declare("r3", {Sort::kAtom, Sort::kAtom});
  Database db(&store_, &sig);
  for (int i = 0; i < 7; ++i) {
    TermId a = store_.MakeConstant("c" + std::to_string(i));
    db.AddTuple(r1, {a, a});
    if (i < 3) db.AddTuple(r2, {a, a});
    db.AddTuple(r3, {a, a});
  }
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{r1, {x_, y_}, true});
  c.body.push_back(Literal{r2, {y_, z_}, true});
  c.body.push_back(Literal{r3, {z_, x_}, true});

  PlannerStats stats = PlannerStats::FromDatabase(db);
  auto first = BuildRulePlan(store_, sig, c, &stats);
  ASSERT_TRUE(first.ok());
  for (int trial = 0; trial < 20; ++trial) {
    PlannerStats again = PlannerStats::FromDatabase(db);
    auto plan = BuildRulePlan(store_, sig, c, &again);
    ASSERT_TRUE(plan.ok());
    ASSERT_EQ(plan->free_plan.steps.size(),
              first->free_plan.steps.size());
    for (size_t i = 0; i < plan->free_plan.steps.size(); ++i) {
      EXPECT_EQ(plan->free_plan.steps[i].literal_index,
                first->free_plan.steps[i].literal_index);
      EXPECT_EQ(plan->free_plan.steps[i].est_rows,
                first->free_plan.steps[i].est_rows);
    }
    EXPECT_EQ(plan->free_plan.est_out, first->free_plan.est_out);
  }
}

TEST_F(PlanTest, StatsReadsAreRaceFreeAgainstSnapshotReaders) {
  // Relation::Stats() documents that it is safe concurrent with
  // LookupSnapshot while no insert runs - the coordinator snapshots
  // statistics while serve-side readers scan. Run both under TSan.
  Database db(&store_, &program_.signature());
  TermId key = kInvalidTerm;
  for (int i = 0; i < 64; ++i) {
    TermId a = store_.MakeConstant("s" + std::to_string(i));
    if (i == 0) key = a;
    db.AddTuple(p2_, {a, a});
  }
  Relation& rel = db.relation(p2_);
  rel.EnsureIndex(ColumnBit(0));
  std::atomic<bool> go{false};
  std::atomic<size_t> rows_seen{0};
  std::thread reader([&] {
    while (!go.load()) {
    }
    std::vector<RowId> hits;
    Tuple k{key, kInvalidTerm};
    for (int i = 0; i < 1000; ++i) {
      rel.LookupSnapshot(ColumnBit(0), k, rel.size(), &hits);
      rows_seen += hits.size();
    }
  });
  std::thread counter([&] {
    while (!go.load()) {
    }
    for (int i = 0; i < 1000; ++i) {
      RelationStats s = rel.Stats();
      rows_seen += s.live_rows;
    }
  });
  go = true;
  reader.join();
  counter.join();
  EXPECT_GT(rows_seen.load(), 0u);
}

TEST_F(PlanTest, BlockedBuiltinsForceEnumeration) {
  // p1(X) :- lt(X, Y): neither bound; the plan must enumerate.
  Clause c;
  c.head = Literal{p1_, {x_}, true};
  c.body.push_back(Literal{kPredLt, {x_, y_}, true});
  auto plan = BuildRulePlan(store_, program_.signature(), c);
  ASSERT_TRUE(plan.ok());
  size_t enums = 0;
  for (const PlanStep& s : plan->free_plan.steps) {
    if (s.kind == StepKind::kEnumAtom) ++enums;
  }
  EXPECT_EQ(enums, 2u);  // both X and Y
}

}  // namespace
}  // namespace lps
