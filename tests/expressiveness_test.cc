// Falsification experiments for the paper's impossibility results.
//
// Theorem 7: union is not definable in LPS without auxiliary
// predicates. We run the paper's own failed attempt (Section 4.1's
// two-clause split) and exhibit the wrong tuples it derives, then show
// the auxiliary-predicate definition is exact.
//
// Theorem 8: the set construction B(X) = {x | A(x)} is not definable in
// any language with minimal-model semantics. We run the proof's P1/P2
// scenario on the natural positive attempt and observe exactly the
// failure mode the proof predicts (all subsets satisfy B); the
// stratified repair of Section 4.2 is covered in ldl_test.cc.
#include <gtest/gtest.h>

#include "eval/engine.h"
#include "term/printer.h"
#include "term/set_algebra.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

// Section 4.1: splitting the disjunction into two clauses does NOT give
// union; it gives "X u Y subseteq Z and (Z subseteq X or Z subseteq Y)".
TEST(Theorem7Test, NaiveTwoClauseSplitIsNotUnion) {
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    s({1}). s({2}). s({1, 2}). s({1, 2, 3}).
    sub(X, Y) :- s(X), s(Y), forall E in X : E in Y.
    bad_union(X, Y, Z) :- sub(X, Z), sub(Y, Z), s(Z),
                          forall C in Z : C in X.
    bad_union(X, Y, Z) :- sub(X, Z), sub(Y, Z), s(Z),
                          forall C in Z : C in Y.
  )"));
  ASSERT_OK(engine.Evaluate());
  // The real union {1} u {2} = {1,2} is MISSED by the split ...
  EXPECT_FALSE(*engine.HoldsText("bad_union({1}, {2}, {1,2})"));
  // ... while Z subseteq X cases wrongly pass with Y arbitrary.
  EXPECT_TRUE(*engine.HoldsText("bad_union({1,2}, {1}, {1,2})"));
  // The correct aux-based definition (Example 3 / Theorem 6) is exact.
  ASSERT_OK(engine.LoadString(R"(
    good_union(X, Y, Z) :- sub(X, Z), sub(Y, Z), s(Z),
                           forall C in Z : (C in X ; C in Y).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("good_union({1}, {2}, {1,2})"));
  EXPECT_FALSE(*engine.HoldsText("good_union({1}, {2}, {1,2,3})"));
}

// Exhaustive check that the aux-based union agrees with set-theoretic
// union on every active triple (the positive half of Theorem 7: *with*
// auxiliary predicates the relation is definable).
TEST(Theorem7Test, AuxUnionIsExactOnDomain) {
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    s({}). s({1}). s({2}). s({1, 2}). s({2, 3}). s({1, 2, 3}).
    sub(X, Y) :- s(X), s(Y), forall E in X : E in Y.
    u(X, Y, Z) :- sub(X, Z), sub(Y, Z), s(Z),
                  forall C in Z : (C in X ; C in Y).
  )"));
  ASSERT_OK(engine.Evaluate());
  auto sets = engine.Query("s(S)");
  ASSERT_TRUE(sets.ok());
  ASSERT_EQ(sets->size(), 6u);
  PredicateId u = engine.signature()->Lookup("u", 3);
  size_t positives = 0;
  for (const Tuple& x : *sets) {
    for (const Tuple& y : *sets) {
      TermId expected = SetUnion(engine.store(), x[0], y[0]);
      for (const Tuple& z : *sets) {
        bool holds =
            engine.database()->Contains(u, {x[0], y[0], z[0]});
        EXPECT_EQ(holds, z[0] == expected)
            << engine.TupleToString({x[0], y[0], z[0]});
        if (holds) ++positives;
      }
    }
  }
  // The domain is union-closed, so every one of the 36 pairs has its
  // union found.
  EXPECT_EQ(positives, 36u);
}

// Theorem 8, run exactly as in the proof: P1 = {A(c1)} and
// P2 = {A(c1), A(c2)}. The positive definition B(X) :- (forall x in X)
// A(x) accepts every subset, so under P2 it still accepts {c1} - which
// the true set construction must reject. Monotonicity makes this
// unavoidable: M_P1 subseteq M_P2 for positive programs.
TEST(Theorem8Test, PositiveBOverApproximatesUnderGrowth) {
  const char* kDefinition = R"(
    dom({c1}). dom({c2}). dom({c1, c2}). dom({}).
    b(X) :- dom(X), forall E in X : a(E).
  )";
  Engine p1(LanguageMode::kLPS);
  ASSERT_OK(p1.LoadString(kDefinition));
  ASSERT_OK(p1.LoadString("a(c1)."));
  ASSERT_OK(p1.Evaluate());
  // Under P1 the candidate definition already over-approximates:
  EXPECT_TRUE(*p1.HoldsText("b({c1})"));
  EXPECT_TRUE(*p1.HoldsText("b({})"));  // subset, wrongly accepted
  EXPECT_FALSE(*p1.HoldsText("b({c1, c2})"));

  Engine p2(LanguageMode::kLPS);
  ASSERT_OK(p2.LoadString(kDefinition));
  ASSERT_OK(p2.LoadString("a(c1). a(c2)."));
  ASSERT_OK(p2.Evaluate());
  // The true construction under P2 is {c1, c2} only; the positive
  // definition still accepts {c1} - exactly the proof's contradiction:
  // M_P1's B-facts persist in M_P2.
  EXPECT_TRUE(*p2.HoldsText("b({c1, c2})"));
  EXPECT_TRUE(*p2.HoldsText("b({c1})")) << "monotonicity violated?!";
  // Machine-check the monotonicity claim itself.
  PredicateId b1 = p1.signature()->Lookup("b", 1);
  const Relation* r1 = p1.database()->FindRelation(b1);
  ASSERT_NE(r1, nullptr);
  for (TupleRef t : r1->rows()) {
    // Same textual term in the other engine's store.
    std::string text =
        "b(" + TermToString(*p1.store(), t[0]) + ")";
    EXPECT_TRUE(*p2.HoldsText(text)) << text;
  }
}

// The stratified repair (Section 4.2) run against BOTH EDBs: unlike the
// positive attempt it tracks the intended set exactly - showing the
// impossibility is really about minimal-model (negation-free) LPS.
TEST(Theorem8Test, StratifiedRepairIsExactUnderGrowth) {
  const char* kDefinition = R"(
    dom({c1}). dom({c2}). dom({c1, c2}). dom({}).
    c(X) :- dom(X), dom(Y), (forall E in Y : a(E)),
            (forall E in X : E in Y), (exists W in Y : W notin X).
    b(X) :- dom(X), (forall E in X : a(E)), not c(X).
  )";
  Engine p1(LanguageMode::kLPS);
  ASSERT_OK(p1.LoadString(kDefinition));
  ASSERT_OK(p1.LoadString("a(c1)."));
  ASSERT_OK(p1.Evaluate());
  EXPECT_TRUE(*p1.HoldsText("b({c1})"));
  EXPECT_FALSE(*p1.HoldsText("b({})"));
  EXPECT_FALSE(*p1.HoldsText("b({c1, c2})"));

  Engine p2(LanguageMode::kLPS);
  ASSERT_OK(p2.LoadString(kDefinition));
  ASSERT_OK(p2.LoadString("a(c1). a(c2)."));
  ASSERT_OK(p2.Evaluate());
  EXPECT_TRUE(*p2.HoldsText("b({c1, c2})"));
  EXPECT_FALSE(*p2.HoldsText("b({c1})"));  // no longer maximal
  EXPECT_FALSE(*p2.HoldsText("b({})"));
}

}  // namespace
}  // namespace lps
