// Tests for the hash-consed two-sorted term store (Definitions 1-3).
#include "term/term.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <span>
#include <vector>

#include "term/printer.h"

namespace lps {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermStore store_;
};

TEST_F(TermTest, ConstantsAreInterned) {
  TermId a1 = store_.MakeConstant("a");
  TermId a2 = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(store_.kind(a1), TermKind::kConstant);
  EXPECT_EQ(store_.sort(a1), Sort::kAtom);
  EXPECT_TRUE(store_.is_ground(a1));
  EXPECT_EQ(store_.depth(a1), 0);
}

TEST_F(TermTest, IntegersAreInterned) {
  TermId i1 = store_.MakeInt(42);
  TermId i2 = store_.MakeInt(42);
  TermId i3 = store_.MakeInt(-7);
  EXPECT_EQ(i1, i2);
  EXPECT_NE(i1, i3);
  EXPECT_EQ(store_.int_value(i3), -7);
  EXPECT_EQ(store_.sort(i1), Sort::kAtom);
}

TEST_F(TermTest, VariablesDistinguishedBySort) {
  TermId xa = store_.MakeVariable("X", Sort::kAtom);
  TermId xs = store_.MakeVariable("X", Sort::kSet);
  TermId xa2 = store_.MakeVariable("X", Sort::kAtom);
  EXPECT_EQ(xa, xa2);
  EXPECT_NE(xa, xs);
  EXPECT_FALSE(store_.is_ground(xa));
  EXPECT_EQ(store_.sort(xs), Sort::kSet);
}

TEST_F(TermTest, FreshVariablesAreDistinct) {
  TermId v1 = store_.MakeFreshVariable("V", Sort::kAtom);
  TermId v2 = store_.MakeFreshVariable("V", Sort::kAtom);
  EXPECT_NE(v1, v2);
}

TEST_F(TermTest, FunctionTermsHashCons) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId f1 = store_.MakeFunction("f", {a, b});
  TermId f2 = store_.MakeFunction("f", {a, b});
  TermId f3 = store_.MakeFunction("f", {b, a});
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);  // argument order matters for functions
  EXPECT_EQ(store_.sort(f1), Sort::kAtom);  // ranges are atoms (Def 1.2)
  EXPECT_EQ(store_.args(f1).size(), 2u);
}

TEST_F(TermTest, GroundSetsAreCanonical) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  // {a, b} == {b, a} == {a, b, a}: order and multiplicity collapse.
  TermId s1 = store_.MakeSet({a, b});
  TermId s2 = store_.MakeSet({b, a});
  TermId s3 = store_.MakeSet({a, b, a});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s3);
  EXPECT_EQ(store_.args(s1).size(), 2u);
  EXPECT_EQ(store_.sort(s1), Sort::kSet);
  EXPECT_EQ(store_.depth(s1), 1);
}

TEST_F(TermTest, EmptySetSingleton) {
  EXPECT_EQ(store_.EmptySet(), store_.MakeSet({}));
  EXPECT_EQ(store_.depth(store_.EmptySet()), 1);
  EXPECT_TRUE(store_.is_ground(store_.EmptySet()));
}

TEST_F(TermTest, NestedSetsTrackDepth) {
  TermId a = store_.MakeConstant("a");
  TermId s = store_.MakeSet({a});
  TermId ss = store_.MakeSet({s});
  TermId mixed = store_.MakeSet({a, ss});
  EXPECT_EQ(store_.depth(s), 1);
  EXPECT_EQ(store_.depth(ss), 2);
  EXPECT_EQ(store_.depth(mixed), 3);
}

TEST_F(TermTest, SetCollapsesVariableDuplicates) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  // {x, x} = {x} holds in every LPS model, so the store collapses it.
  TermId s1 = store_.MakeSet({x, x});
  TermId s2 = store_.MakeSet({x});
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(store_.is_ground(s1));
}

TEST_F(TermTest, GroundnessPropagates) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  TermId a = store_.MakeConstant("a");
  TermId f = store_.MakeFunction("f", {x});
  TermId g = store_.MakeFunction("g", {a});
  EXPECT_FALSE(store_.is_ground(f));
  EXPECT_TRUE(store_.is_ground(g));
  EXPECT_FALSE(store_.is_ground(store_.MakeSet({a, x})));
}

TEST_F(TermTest, CollectVariables) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  TermId y = store_.MakeVariable("Y", Sort::kAtom);
  TermId a = store_.MakeConstant("a");
  TermId t = store_.MakeSet({store_.MakeFunction("f", {x, y}), a, x});
  std::vector<TermId> vars;
  store_.CollectVariables(t, &vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(store_.ContainsVariable(t, x));
  EXPECT_TRUE(store_.ContainsVariable(t, y));
  EXPECT_FALSE(store_.ContainsVariable(a, x));
}

TEST_F(TermTest, PrinterRendersPaperSyntax) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  EXPECT_EQ(TermToString(store_, a), "a");
  EXPECT_EQ(TermToString(store_, store_.MakeInt(3)), "3");
  EXPECT_EQ(TermToString(store_, store_.MakeFunction("f", {a, x})),
            "f(a, X)");
  EXPECT_EQ(TermToString(store_, store_.EmptySet()), "{}");
  // Canonical order is by term id: a was interned before b.
  EXPECT_EQ(TermToString(store_, store_.MakeSet({b, a})), "{a, b}");
}

// Property: interning the same structure twice never grows the store.
TEST_F(TermTest, InterningIsIdempotent) {
  TermId a = store_.MakeConstant("a");
  for (int round = 0; round < 3; ++round) {
    size_t before = store_.size();
    TermId s = store_.MakeSet({a, store_.MakeFunction("f", {a})});
    (void)s;
    if (round > 0) {
      EXPECT_EQ(store_.size(), before);
    }
  }
}

// Parameterized sweep: canonicalization invariants for arbitrary element
// multisets.
class SetCanonTest : public ::testing::TestWithParam<int> {};

TEST_P(SetCanonTest, SortedUniqueElements) {
  TermStore store;
  int n = GetParam();
  std::vector<TermId> elems;
  for (int i = 0; i < n; ++i) {
    elems.push_back(store.MakeConstant("c" + std::to_string(i % 3)));
  }
  TermId s = store.MakeSet(elems);
  auto args = store.args(s);
  EXPECT_LE(args.size(), 3u);
  for (size_t i = 1; i < args.size(); ++i) {
    EXPECT_LT(args[i - 1], args[i]);  // strictly sorted = no duplicates
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, SetCanonTest,
                         ::testing::Values(0, 1, 2, 3, 5, 9, 17));

// ---- Set-intern differential test ------------------------------------
// Randomized canonical-form lock-in (in the spirit of relation_test's
// RandomizedLookupMatchesLinearScanOracle): every construction path -
// MakeSet(vector), MakeSet(span), SetBuilder::Build, and
// InternCanonicalSet on the oracle-canonicalized sequence - must agree
// with a sort+unique oracle, on the same id whenever the canonical
// forms coincide, and on distinct ids otherwise. Drives the intern
// table through several growth cycles.
TEST_F(TermTest, RandomizedSetInternMatchesCanonicalizationOracle) {
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto rnd = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };

  // Element pool: constants, ints, and a few nested sets.
  std::vector<TermId> pool;
  for (int i = 0; i < 24; ++i) {
    pool.push_back(store_.MakeConstant("c" + std::to_string(i)));
    pool.push_back(store_.MakeInt(i * 7 - 3));
  }
  pool.push_back(store_.MakeSet({pool[0], pool[1]}));
  pool.push_back(store_.MakeSet({pool[2]}));
  pool.push_back(store_.EmptySet());

  std::map<std::vector<TermId>, TermId> by_canonical_form;
  SetBuilder builder;
  for (int round = 0; round < 4000; ++round) {
    // A random multiset, duplicates likely.
    std::vector<TermId> elems;
    size_t n = rnd() % 9;
    for (size_t i = 0; i < n; ++i) {
      elems.push_back(pool[rnd() % pool.size()]);
    }

    // Oracle canonical form: sorted unique ids.
    std::vector<TermId> canon = elems;
    std::sort(canon.begin(), canon.end());
    canon.erase(std::unique(canon.begin(), canon.end()), canon.end());

    TermId via_vector = store_.MakeSet(elems);
    TermId via_span =
        store_.MakeSet(std::span<const TermId>(elems.data(), elems.size()));
    builder.Clear();
    for (TermId e : elems) builder.Add(e);
    TermId via_builder = builder.Build(&store_);
    TermId via_canonical = store_.InternCanonicalSet(canon);

    ASSERT_EQ(via_vector, via_span);
    ASSERT_EQ(via_vector, via_builder);
    ASSERT_EQ(via_vector, via_canonical);

    // Stored element array is exactly the oracle's canonical form.
    auto args = store_.args(via_vector);
    ASSERT_TRUE(std::equal(args.begin(), args.end(), canon.begin(),
                           canon.end()))
        << "stored form diverges from the canonicalization oracle";

    // Same canonical form <=> same id, across the whole history.
    auto [it, inserted] = by_canonical_form.emplace(canon, via_vector);
    ASSERT_EQ(it->second, via_vector)
        << (inserted ? "" : "re-interning an old form changed its id");
  }
  // The differential sweep must have exercised both table hits and
  // growth well past the initial slot count.
  EXPECT_GT(store_.set_intern_hits(), 1000u);
  EXPECT_GT(by_canonical_form.size(), 200u);
}

TEST_F(TermTest, InternCanonicalSetAcceptsArenaAliasingSpans) {
  // The documented contract: the input span may view the store's own
  // element arena. Re-interning an existing set's args() is a hit;
  // interning a subspan of them is a (copy-safe) miss.
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId c = store_.MakeConstant("c");
  TermId abc = store_.MakeSet({a, b, c});
  EXPECT_EQ(store_.InternCanonicalSet(store_.args(abc)), abc);
  TermId ab = store_.InternCanonicalSet(store_.args(abc).subspan(0, 2));
  EXPECT_EQ(ab, store_.MakeSet({a, b}));
  // Force arena growth while interning spans into it.
  for (int i = 0; i < 64; ++i) {
    TermId x = store_.MakeConstant("x" + std::to_string(i));
    TermId s = store_.MakeSet({a, x});
    EXPECT_EQ(store_.InternCanonicalSet(store_.args(s)), s);
  }
}

TEST_F(TermTest, SetInternCountersTrackHitsAndMisses) {
  size_t interns0 = store_.set_interns();   // constructor made {}
  size_t hits0 = store_.set_intern_hits();
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId s1 = store_.MakeSet({a, b});  // miss
  EXPECT_EQ(store_.set_interns(), interns0 + 1);
  EXPECT_EQ(store_.set_intern_hits(), hits0);
  TermId s2 = store_.MakeSet({b, a, b});  // same canonical form: hit
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(store_.set_interns(), interns0 + 2);
  EXPECT_EQ(store_.set_intern_hits(), hits0 + 1);
}

}  // namespace
}  // namespace lps
