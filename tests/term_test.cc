// Tests for the hash-consed two-sorted term store (Definitions 1-3).
#include "term/term.h"

#include <gtest/gtest.h>

#include "term/printer.h"

namespace lps {
namespace {

class TermTest : public ::testing::Test {
 protected:
  TermStore store_;
};

TEST_F(TermTest, ConstantsAreInterned) {
  TermId a1 = store_.MakeConstant("a");
  TermId a2 = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
  EXPECT_EQ(store_.kind(a1), TermKind::kConstant);
  EXPECT_EQ(store_.sort(a1), Sort::kAtom);
  EXPECT_TRUE(store_.is_ground(a1));
  EXPECT_EQ(store_.depth(a1), 0);
}

TEST_F(TermTest, IntegersAreInterned) {
  TermId i1 = store_.MakeInt(42);
  TermId i2 = store_.MakeInt(42);
  TermId i3 = store_.MakeInt(-7);
  EXPECT_EQ(i1, i2);
  EXPECT_NE(i1, i3);
  EXPECT_EQ(store_.int_value(i3), -7);
  EXPECT_EQ(store_.sort(i1), Sort::kAtom);
}

TEST_F(TermTest, VariablesDistinguishedBySort) {
  TermId xa = store_.MakeVariable("X", Sort::kAtom);
  TermId xs = store_.MakeVariable("X", Sort::kSet);
  TermId xa2 = store_.MakeVariable("X", Sort::kAtom);
  EXPECT_EQ(xa, xa2);
  EXPECT_NE(xa, xs);
  EXPECT_FALSE(store_.is_ground(xa));
  EXPECT_EQ(store_.sort(xs), Sort::kSet);
}

TEST_F(TermTest, FreshVariablesAreDistinct) {
  TermId v1 = store_.MakeFreshVariable("V", Sort::kAtom);
  TermId v2 = store_.MakeFreshVariable("V", Sort::kAtom);
  EXPECT_NE(v1, v2);
}

TEST_F(TermTest, FunctionTermsHashCons) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId f1 = store_.MakeFunction("f", {a, b});
  TermId f2 = store_.MakeFunction("f", {a, b});
  TermId f3 = store_.MakeFunction("f", {b, a});
  EXPECT_EQ(f1, f2);
  EXPECT_NE(f1, f3);  // argument order matters for functions
  EXPECT_EQ(store_.sort(f1), Sort::kAtom);  // ranges are atoms (Def 1.2)
  EXPECT_EQ(store_.args(f1).size(), 2u);
}

TEST_F(TermTest, GroundSetsAreCanonical) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  // {a, b} == {b, a} == {a, b, a}: order and multiplicity collapse.
  TermId s1 = store_.MakeSet({a, b});
  TermId s2 = store_.MakeSet({b, a});
  TermId s3 = store_.MakeSet({a, b, a});
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1, s3);
  EXPECT_EQ(store_.args(s1).size(), 2u);
  EXPECT_EQ(store_.sort(s1), Sort::kSet);
  EXPECT_EQ(store_.depth(s1), 1);
}

TEST_F(TermTest, EmptySetSingleton) {
  EXPECT_EQ(store_.EmptySet(), store_.MakeSet({}));
  EXPECT_EQ(store_.depth(store_.EmptySet()), 1);
  EXPECT_TRUE(store_.is_ground(store_.EmptySet()));
}

TEST_F(TermTest, NestedSetsTrackDepth) {
  TermId a = store_.MakeConstant("a");
  TermId s = store_.MakeSet({a});
  TermId ss = store_.MakeSet({s});
  TermId mixed = store_.MakeSet({a, ss});
  EXPECT_EQ(store_.depth(s), 1);
  EXPECT_EQ(store_.depth(ss), 2);
  EXPECT_EQ(store_.depth(mixed), 3);
}

TEST_F(TermTest, SetCollapsesVariableDuplicates) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  // {x, x} = {x} holds in every LPS model, so the store collapses it.
  TermId s1 = store_.MakeSet({x, x});
  TermId s2 = store_.MakeSet({x});
  EXPECT_EQ(s1, s2);
  EXPECT_FALSE(store_.is_ground(s1));
}

TEST_F(TermTest, GroundnessPropagates) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  TermId a = store_.MakeConstant("a");
  TermId f = store_.MakeFunction("f", {x});
  TermId g = store_.MakeFunction("g", {a});
  EXPECT_FALSE(store_.is_ground(f));
  EXPECT_TRUE(store_.is_ground(g));
  EXPECT_FALSE(store_.is_ground(store_.MakeSet({a, x})));
}

TEST_F(TermTest, CollectVariables) {
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  TermId y = store_.MakeVariable("Y", Sort::kAtom);
  TermId a = store_.MakeConstant("a");
  TermId t = store_.MakeSet({store_.MakeFunction("f", {x, y}), a, x});
  std::vector<TermId> vars;
  store_.CollectVariables(t, &vars);
  EXPECT_EQ(vars.size(), 2u);
  EXPECT_TRUE(store_.ContainsVariable(t, x));
  EXPECT_TRUE(store_.ContainsVariable(t, y));
  EXPECT_FALSE(store_.ContainsVariable(a, x));
}

TEST_F(TermTest, PrinterRendersPaperSyntax) {
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId x = store_.MakeVariable("X", Sort::kAtom);
  EXPECT_EQ(TermToString(store_, a), "a");
  EXPECT_EQ(TermToString(store_, store_.MakeInt(3)), "3");
  EXPECT_EQ(TermToString(store_, store_.MakeFunction("f", {a, x})),
            "f(a, X)");
  EXPECT_EQ(TermToString(store_, store_.EmptySet()), "{}");
  // Canonical order is by term id: a was interned before b.
  EXPECT_EQ(TermToString(store_, store_.MakeSet({b, a})), "{a, b}");
}

// Property: interning the same structure twice never grows the store.
TEST_F(TermTest, InterningIsIdempotent) {
  TermId a = store_.MakeConstant("a");
  for (int round = 0; round < 3; ++round) {
    size_t before = store_.size();
    TermId s = store_.MakeSet({a, store_.MakeFunction("f", {a})});
    (void)s;
    if (round > 0) {
      EXPECT_EQ(store_.size(), before);
    }
  }
}

// Parameterized sweep: canonicalization invariants for arbitrary element
// multisets.
class SetCanonTest : public ::testing::TestWithParam<int> {};

TEST_P(SetCanonTest, SortedUniqueElements) {
  TermStore store;
  int n = GetParam();
  std::vector<TermId> elems;
  for (int i = 0; i < n; ++i) {
    elems.push_back(store.MakeConstant("c" + std::to_string(i % 3)));
  }
  TermId s = store.MakeSet(elems);
  auto args = store.args(s);
  EXPECT_LE(args.size(), 3u);
  for (size_t i = 1; i < args.size(); ++i) {
    EXPECT_LT(args[i - 1], args[i]);  // strictly sorted = no duplicates
  }
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, SetCanonTest,
                         ::testing::Values(0, 1, 2, 3, 5, 9, 17));

}  // namespace
}  // namespace lps
