// Theorems 11 and 12: LDL grouping clauses vs ELPS with stratified
// negation - the translations of Section 6 run in both directions.
#include "transform/ldl.h"

#include <gtest/gtest.h>

#include "eval/bottomup.h"
#include "eval/engine.h"
#include "lang/validate.h"
#include "term/set_algebra.h"
#include "transform/stratify.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

std::unique_ptr<Database> Eval(const Program& program,
                               EvalOptions options = {}) {
  auto db = std::make_unique<Database>(program.store(),
                                       &program.signature());
  auto stats = EvaluateProgram(program, db.get(), options);
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return db;
}

TEST(GroupingElimTest, TranslationMatchesNativeGrouping) {
  // The witness sets (each group and its rivals) must be active for the
  // negation-based translation to quantify over them; subsets facts
  // seed the domain (active-domain semantics, see DESIGN.md).
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    emp(sales, ann). emp(sales, bob). emp(dev, carol).
    dom({ann}). dom({bob}). dom({carol}). dom({ann, bob}).
    dom({ann, carol}). dom({bob, carol}). dom({ann, bob, carol}).
    team(D, <E>) :- emp(D, E).
  )"));
  Program original = *engine.program();
  auto native_db = Eval(original);

  auto translated = EliminateGrouping(original);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  EXPECT_FALSE(ProgramUsesGrouping(*translated));
  EXPECT_TRUE(ProgramUsesNegation(*translated));
  // The translation is stratified (Theorem 12).
  EXPECT_TRUE(Stratify(*translated).ok());

  auto translated_db = Eval(*translated);
  PredicateId team = engine.signature()->Lookup("team", 2);
  ASSERT_NE(team, kInvalidPredicate);

  // Native groups must appear identically in the translation.
  const Relation* rn = native_db->FindRelation(team);
  ASSERT_NE(rn, nullptr);
  ASSERT_EQ(rn->size(), 2u);
  for (TupleRef t : rn->rows()) {
    EXPECT_TRUE(translated_db->Contains(team, t))
        << "missing group in translation";
  }
  // And the translation must not invent wrong groups for those keys.
  const Relation* rt = translated_db->FindRelation(team);
  ASSERT_NE(rt, nullptr);
  for (TupleRef t : rt->rows()) {
    if (SetCardinality(*engine.store(), t[1]) > 0) {
      EXPECT_TRUE(rn->Contains(t))
          << "translation derived a spurious non-empty group";
    }
  }
}

TEST(GroupingElimTest, RejectsEmptyBodyGrouping) {
  TermStore store;
  Program program(&store);
  PredicateId g =
      *program.signature().Declare("g", {Sort::kAtom, Sort::kSet});
  TermId x = store.MakeVariable("X", Sort::kAtom);
  TermId y = store.MakeVariable("Y", Sort::kAtom);
  Clause c;
  c.head = Literal{g, {x, y}, true};
  c.grouping = GroupSpec{1, y};
  program.AddClause(c);
  EXPECT_FALSE(EliminateGrouping(program).ok());
}

TEST(UnionToGroupingTest, GroupedUnionMatchesBuiltin) {
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    a({1, 2}). b({2, 3}).
    u(Z) :- a(X), b(Y), union(X, Y, Z).
  )"));
  Program original = *engine.program();
  auto original_db = Eval(original);

  auto translated = UnionToGrouping(original);
  ASSERT_TRUE(translated.ok()) << translated.status().ToString();
  for (const Clause& c : translated->clauses()) {
    for (const Literal& l : c.body) {
      EXPECT_NE(l.pred, kPredUnion);
    }
  }
  EXPECT_TRUE(ProgramUsesGrouping(*translated));
  auto translated_db = Eval(*translated);

  PredicateId u = engine.signature()->Lookup("u", 1);
  const Relation* r1 = original_db->FindRelation(u);
  const Relation* r2 = translated_db->FindRelation(u);
  ASSERT_NE(r1, nullptr);
  ASSERT_NE(r2, nullptr);
  EXPECT_EQ(r1->size(), r2->size());
  for (TupleRef t : r1->rows()) {
    EXPECT_TRUE(r2->Contains(t));
  }
  EXPECT_TRUE(original_db->Contains(
      u, {engine.ParseTerm("{1,2,3}").value()}));
}

TEST(UnionToGroupingTest, StratificationPreserved) {
  // Theorem 12: the maps carry stratified programs to stratified ones.
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    a({1}). b({2}). bad({9}).
    u(Z) :- a(X), b(Y), union(X, Y, Z).
    ok(Z) :- u(Z), not bad(Z).
  )"));
  auto translated = UnionToGrouping(*engine.program());
  ASSERT_TRUE(translated.ok());
  EXPECT_TRUE(Stratify(*translated).ok());
  auto db = Eval(*translated);
  PredicateId ok = engine.signature()->Lookup("ok", 1);
  EXPECT_TRUE(db->Contains(ok, {engine.ParseTerm("{1,2}").value()}));
}

TEST(SetConstructionTest, Section42StratifiedDefinition) {
  // Section 4.2: B(X) = {x | A(x)} via stratified negation. Subset
  // facts seed the candidate space.
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    a(1). a(2).
    dom({}). dom({1}). dom({2}). dom({3}). dom({1, 2}).
    dom({1, 3}). dom({2, 3}). dom({1, 2, 3}).
    c(X) :- dom(X), dom(Y), (forall E in Y : a(E)),
            (forall E in X : E in Y), (exists W in Y : W notin X).
    b(X) :- dom(X), (forall E in X : a(E)), not c(X).
  )"));
  ASSERT_OK(engine.Evaluate());
  // Exactly the full set {1, 2} satisfies b.
  EXPECT_TRUE(*engine.HoldsText("b({1,2})"));
  EXPECT_FALSE(*engine.HoldsText("b({1})"));
  EXPECT_FALSE(*engine.HoldsText("b({2})"));
  EXPECT_FALSE(*engine.HoldsText("b({})"));
  EXPECT_FALSE(*engine.HoldsText("b({1,2,3})"));
  auto rows = engine.Query("b(X)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);
}

TEST(LdlModeTest, GroupingValidatesOnlyInLdl) {
  Engine lps(LanguageMode::kLPS);
  Status st = lps.LoadString("g(X, <Y>) :- q(X, Y). q(a, b).");
  EXPECT_FALSE(st.ok());
  Engine ldl(LanguageMode::kLDL);
  ASSERT_OK(ldl.LoadString("g(X, <Y>) :- q(X, Y). q(a, b)."));
}

TEST(LdlModeTest, GroupingOfSetsInElps) {
  // Grouping can collect sets into a set of sets (ELPS nesting).
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    pred owns(atom, set).
    owns(ann, {book}). owns(ann, {pen, ink}). owns(bob, {car}).
    estates(P, <S>) :- owns(P, S).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("estates(ann, {{book}, {pen, ink}})"));
  EXPECT_TRUE(*engine.HoldsText("estates(bob, {{car}})"));
}

}  // namespace
}  // namespace lps
