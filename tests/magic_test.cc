// Magic-set demand transformation (transform/magic.h): golden
// adornment tests (binding-pattern propagation, guard rules, negation
// stratum placement, fact import), the fallback taxonomy, and an
// equivalence sweep running representative programs from the rest of
// the test suite under demand-on vs demand-off execution.
#include "transform/magic.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "eval/plan.h"
#include "lps/lps.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

// Loads `source` into a fresh LDL session and compiles it.
std::unique_ptr<Session> Load(const std::string& source) {
  auto session = std::make_unique<Session>(LanguageMode::kLDL);
  EXPECT_TRUE(session->Load(source).ok());
  EXPECT_TRUE(session->Compile().ok());
  return session;
}

// Runs the rewrite for `goal` against the session's program, with the
// binding pattern taken from the goal's ground arguments.
Result<MagicRewriteResult> Rewrite(Session* session,
                                   const std::string& goal) {
  auto q = session->Prepare(goal);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  std::vector<bool> bound;
  for (TermId a : q->goal().args) {
    bound.push_back(session->store()->is_ground(a));
  }
  return MagicRewrite(*session->program(), q->goal(), bound);
}

std::vector<std::string> ClauseStrings(const Program& p) {
  std::vector<std::string> out;
  for (const Clause& c : p.clauses()) {
    out.push_back(ClauseToString(*p.store(), p.signature(), c));
  }
  return out;
}

TEST(MagicRewriteTest, TransitiveClosureGolden) {
  auto session = Load(R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  auto rw = Rewrite(session.get(), "path(a, X)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const MagicProgram& mp = *rw->rewrite;

  // Left-linear recursion would produce the tautological guard
  // m_path_bf(X) :- m_path_bf(X); it is skipped. The final clause is
  // the unconditional fact-import rule: emitted even though path has
  // no facts right now, so the (rule-keyed) cached rewrite keeps
  // answering after facts are added later.
  EXPECT_EQ(ClauseStrings(mp.program),
            (std::vector<std::string>{
                "path_bf(X, Y) :- m_path_bf(X), edge(X, Y).",
                "path_bf(X, Z) :- m_path_bf(X), path_bf(X, Y), "
                "edge(Y, Z).",
                "path_bf(Mf#0, Mf#1) :- m_path_bf(Mf#0), "
                "path(Mf#0, Mf#1).",
            }));
  EXPECT_EQ(mp.magic_preds.size(), 1u);
  EXPECT_EQ(mp.adorned_preds.size(), 1u);
  EXPECT_EQ(mp.seed_pred, mp.magic_preds[0]);
  EXPECT_EQ(mp.seed_positions, (std::vector<size_t>{0}));
  EXPECT_EQ(mp.program.signature().Name(mp.goal.pred), "path_bf");
  // The goal keeps its original argument terms.
  EXPECT_EQ(mp.goal.args, session->Prepare("path(a, X)")->goal().args);
}

TEST(MagicRewriteTest, BindingPatternPropagatesThroughBodies) {
  // The second argument of the goal is bound; demand reaches q with
  // its own pattern derived from what the prefix binds.
  auto session = Load(R"(
    e(a, b).
    p(X, Y) :- e(X, Y).
    p(X, Y) :- e(X, Z), q(Z, Y).
    q(X, Y) :- p(X, Y).
  )");
  auto rw = Rewrite(session.get(), "p(a, X)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const Signature& sig = rw->rewrite->program.signature();
  std::vector<std::string> names;
  for (PredicateId id : rw->rewrite->adorned_preds) {
    names.push_back(sig.Name(id));
  }
  // p is demanded with its first argument bound; the q(Z, Y) call site
  // has Z bound by the e(X, Z) prefix, so q is adorned bf as well, and
  // q's own body re-demands p_bf.
  EXPECT_EQ(names, (std::vector<std::string>{"p_bf", "q_bf"}));
  std::vector<std::string> clauses = ClauseStrings(rw->rewrite->program);
  EXPECT_NE(std::find(clauses.begin(), clauses.end(),
                      "m_q_bf(Z) :- m_p_bf(X), e(X, Z)."),
            clauses.end())
      << "guard rule feeding demand into q is missing";
}

TEST(MagicRewriteTest, SecondPositionBoundUsesItsOwnAdornment) {
  auto session = Load(R"(
    edge(a, b). edge(b, c).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  auto rw = Rewrite(session.get(), "path(X, c)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const Signature& sig = rw->rewrite->program.signature();
  EXPECT_EQ(sig.Name(rw->rewrite->goal.pred), "path_fb");
  // The recursive call path(X, Y) has neither argument bound under the
  // fb pattern, so the inner occurrence is unrestricted: the original
  // path rules ride along in full.
  std::vector<std::string> clauses = ClauseStrings(rw->rewrite->program);
  EXPECT_NE(std::find(clauses.begin(), clauses.end(),
                      "path(X, Y) :- edge(X, Y)."),
            clauses.end());
}

TEST(MagicRewriteTest, NegatedPredicateStaysFullAndStratifiesBelow) {
  auto session = Load(R"(
    n(a). n(b). bad(b).
    r(X) :- bad(X).
    t(X) :- n(X), not r(X).
  )");
  auto rw = Rewrite(session.get(), "t(a)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const Program& out = rw->rewrite->program;
  // r is needed complete (negation): its rule is copied unchanged.
  std::vector<std::string> clauses = ClauseStrings(out);
  EXPECT_NE(std::find(clauses.begin(), clauses.end(),
                      "r(X) :- bad(X)."),
            clauses.end());
  // The rewritten program is still stratified, with r strictly below
  // the adorned goal predicate.
  auto strat = Stratify(out);
  ASSERT_OK(strat.status());
  PredicateId r = out.signature().Lookup("r", 1);
  ASSERT_NE(r, kInvalidPredicate);
  EXPECT_LT(strat->pred_stratum[r],
            strat->pred_stratum[rw->rewrite->goal.pred]);
}

TEST(MagicRewriteTest, FactsOfDerivedPredicateAreImported) {
  auto session = Load(R"(
    path(a, z).
    edge(a, b).
    path(X, Y) :- edge(X, Y).
  )");
  auto rw = Rewrite(session.get(), "path(a, X)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  // One import rule guards the facts of path behind the magic seed.
  bool found = false;
  for (const std::string& c : ClauseStrings(rw->rewrite->program)) {
    if (c.find("path(") != std::string::npos &&
        c.find("path_bf(") == 0) {
      found = true;
    }
  }
  EXPECT_TRUE(found) << "fact-import rule missing";
}

TEST(MagicRewriteTest, GroupingHeadAdornsOverKeyPositions) {
  auto session = Load(R"(
    part(a, p1). part(a, p2). part(b, p3).
    grp(X, <P>) :- part(X, P).
  )");
  auto rw = Rewrite(session.get(), "grp(a, S)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const MagicProgram& mp = *rw->rewrite;
  // The adorned copy keeps its grouping head; the magic guard joins
  // into the body and restricts whole groups by their key. The second
  // clause is the unconditional fact-import rule (grp has no facts, so
  // it derives nothing here).
  EXPECT_EQ(ClauseStrings(mp.program),
            (std::vector<std::string>{
                "grp_bf(X, <P>) :- m_grp_bf(X), part(X, P).",
                "grp_bf(Mf#0, Mf#1) :- m_grp_bf(Mf#0), grp(Mf#0, Mf#1).",
            }));
  // Only the key position seeds the magic predicate.
  EXPECT_EQ(mp.seed_positions, (std::vector<size_t>{0}));
  EXPECT_EQ(mp.program.signature().Name(mp.goal.pred), "grp_bf");
}

TEST(MagicRewriteTest, GroupedPositionNeverJoinsAnAdornment) {
  // The caller binds grp's grouped (set) position with a variable that
  // is ground at the call site; the adornment must still restrict only
  // the key position.
  auto session = Load(R"(
    part(a, p1). part(b, p2). want(a, {p1}).
    grp(X, <P>) :- part(X, P).
    match(X) :- want(X, S), grp(X, S).
  )");
  auto rw = Rewrite(session.get(), "match(a)");
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const Signature& sig = rw->rewrite->program.signature();
  std::vector<std::string> names;
  for (PredicateId id : rw->rewrite->adorned_preds) {
    names.push_back(sig.Name(id));
  }
  // grp is called with both positions bound, but the grouped second
  // position is dropped: the adornment is bf, not bb.
  EXPECT_EQ(names, (std::vector<std::string>{"match_b", "grp_bf"}));
}

TEST(MagicRewriteTest, GroundSetConstantsAreBoundPositions) {
  // Ground set constants - in the goal, a rule body, and a rule head -
  // are interned ids and thus ordinary bound values; none of them may
  // trip the non-ground set/function fallback.
  auto session = Load(R"(
    owns(alice, {gold, silver}). owns(bob, {tin}).
    rich(P, S) :- owns(P, S).
    flagged(P) :- owns(P, {gold, silver}).
  )");
  auto rw = Rewrite(session.get(), "rich(X, {gold, silver})");
  ASSERT_OK(rw.status());
  EXPECT_TRUE(rw->applied) << rw->fallback_reason;
  auto rw2 = Rewrite(session.get(), "flagged(bob)");
  ASSERT_OK(rw2.status());
  EXPECT_TRUE(rw2->applied) << rw2->fallback_reason;
}

TEST(MagicRewriteTest, StatsPickSipOrder) {
  // p(X, Z) :- r(Y, Z), e(X, Y) with X bound. Source order reaches
  // r(Y, Z) before anything binds Y, so r is demanded unrestricted
  // (copied in full). Statistics rank the tiny EDB scan e(X, Y) - one
  // bound column - ahead of the unknown-size derived r, so the SIP
  // order binds Y first and r is demanded bound-free instead.
  auto session = Load(R"(
    e(a, b). e(b, c).
    s(b, x1). s(c, x2).
    r(X, Y) :- s(X, Y).
    p(X, Z) :- r(Y, Z), e(X, Y).
  )");
  auto legacy = Rewrite(session.get(), "p(a, W)");
  ASSERT_OK(legacy.status());
  ASSERT_TRUE(legacy->applied) << legacy->fallback_reason;
  EXPECT_EQ(legacy->rewrite->adorned_preds.size(), 1u);  // p_bf only

  auto q = session->Prepare("p(a, W)");
  ASSERT_OK(q.status());
  std::vector<bool> bound;
  for (TermId a : q->goal().args) {
    bound.push_back(session->store()->is_ground(a));
  }
  PlannerStats stats = PlannerStats::FromFacts(*session->program());
  for (const Clause& c : session->program()->clauses()) {
    stats.MarkDerived(c.head.pred);
  }
  auto rw = MagicRewrite(*session->program(), q->goal(), bound, &stats);
  ASSERT_OK(rw.status());
  ASSERT_TRUE(rw->applied) << rw->fallback_reason;
  const MagicProgram& mp = *rw->rewrite;
  EXPECT_EQ(mp.adorned_preds.size(), 2u);  // p_bf and r_bf
  EXPECT_EQ(mp.magic_preds.size(), 2u);
  // The adorned rule body is emitted in SIP order: e before r_bf.
  bool sip_body = false;
  for (const std::string& cs : ClauseStrings(mp.program)) {
    if (cs.find("e(X, Y), r_bf(Y, Z)") != std::string::npos) {
      sip_body = true;
    }
  }
  EXPECT_TRUE(sip_body);
}

// ---- Fallback taxonomy ------------------------------------------------

struct FallbackCase {
  const char* name;
  const char* source;
  const char* goal;
  const char* reason_substring;
};

class MagicFallbackTest : public ::testing::TestWithParam<FallbackCase> {};

TEST_P(MagicFallbackTest, ReportsReason) {
  auto session = Load(GetParam().source);
  auto rw = Rewrite(session.get(), GetParam().goal);
  ASSERT_OK(rw.status());
  EXPECT_FALSE(rw->applied);
  EXPECT_NE(rw->fallback_reason.find(GetParam().reason_substring),
            std::string::npos)
      << GetParam().name << ": got \"" << rw->fallback_reason << "\"";
}

INSTANTIATE_TEST_SUITE_P(
    Taxonomy, MagicFallbackTest,
    ::testing::Values(
        FallbackCase{"all_free", "e(a, b). p(X, Y) :- e(X, Y).",
                     "p(X, Y)", "all-free"},
        FallbackCase{"builtin_goal", "e(a, b).", "X in {1, 2}",
                     "builtin"},
        FallbackCase{"edb_goal", "e(a, b).", "e(a, X)", "no rules"},
        FallbackCase{"quantifier",
                     "s({1, 2}). q(1). q(2). "
                     "allq(X) :- s(X), forall E in X : q(E).",
                     "allq({1, 2})", "quantifier"},
        // Grouping heads rewrite when a key position is bound; a goal
        // binding *only* the grouped set position restricts nothing.
        FallbackCase{"grouping_grouped_position_only",
                     "part(a, 1). part(a, 2). "
                     "grp(X, <P>) :- part(X, P).",
                     "grp(X, {1, 2})", "grouped set positions"},
        FallbackCase{"set_term_argument",
                     "s({1, 2}). w(X) :- s({X, 2}).", "w(1)",
                     "non-ground set/function-term"},
        FallbackCase{"enumeration",
                     "e(a). p(X) :- q(X). q(X) :- e(a).", "p(a)",
                     "enumeration"}),
    [](const ::testing::TestParamInfo<FallbackCase>& info) {
      return info.param.name;
    });

// ---- Demand execution end-to-end --------------------------------------

// Rendered (store-independent) sorted answers, so results can be
// compared across sessions with different term-interning orders.
std::vector<std::string> SortedAnswers(Session* session,
                                       const std::string& goal,
                                       bool demand) {
  Options options = session->options();
  options.demand = demand;
  session->set_options(options);
  auto q = session->Prepare(goal);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto cursor = q->Execute();
  EXPECT_TRUE(cursor.ok()) << cursor.status().ToString();
  auto rows = cursor->ToVector();
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  std::vector<std::string> out;
  for (const Tuple& t : *rows) out.push_back(session->TupleToString(t));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(DemandExecutionTest, PointQueryWithoutEvaluate) {
  auto session = Load(R"(
    edge(a, b). edge(b, c). edge(c, d). edge(x, y).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Options options;
  options.demand = true;
  // The magic-counter expectations below pin the legacy source-order
  // rewrite shape (one magic predicate for the left-linear rule); the
  // cost-based SIP order may adorn the recursive literal differently.
  options.reorder = false;
  session->set_options(options);
  // No Session::Evaluate() was ever called.
  auto q = session->Prepare("path(a, X)");
  ASSERT_OK(q.status());
  auto cursor = q->Execute();
  ASSERT_OK(cursor.status());
  auto rows = cursor->ToVector();
  ASSERT_OK(rows.status());
  EXPECT_EQ(rows->size(), 3u);  // b, c, d
  // The session database was never touched: demand evaluation ran in a
  // private database owned by the cursor.
  EXPECT_EQ(session->database()->TupleCount(), 0u);
  // Stats surface the demand evaluation.
  EXPECT_EQ(session->eval_stats().magic_predicates, 1u);
  EXPECT_GT(session->eval_stats().magic_tuples, 0u);
  EXPECT_TRUE(session->eval_stats().demand_fallback_reason.empty());
  // x/y edges were never demanded.
  EXPECT_LT(session->eval_stats().tuples_derived, 12u);
}

TEST(DemandExecutionTest, DerivesStrictSubsetOfFullFixpoint) {
  // A 2-chain x 30 ladder: full tc is quadratic, the point query linear.
  std::string src;
  for (int i = 0; i < 30; ++i) {
    src += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
           ").\n";
  }
  src += "path(X, Y) :- edge(X, Y).\n";
  src += "path(X, Z) :- path(X, Y), edge(Y, Z).\n";
  auto session = Load(src);
  ASSERT_OK(session->Evaluate());
  size_t full_tuples = session->eval_stats().tuples_derived;

  auto demand = SortedAnswers(session.get(), "path(n27, X)", true);
  size_t demand_tuples = session->eval_stats().tuples_derived;
  auto full = SortedAnswers(session.get(), "path(n27, X)", false);
  EXPECT_EQ(demand, full);
  EXPECT_EQ(full.size(), 3u);
  EXPECT_LT(demand_tuples * 5, full_tuples)
      << "demand evaluation should derive >5x fewer tuples";
}

TEST(DemandExecutionTest, RewriteCacheInvalidatedByCompile) {
  auto session = Load(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("path(a, X)");
  ASSERT_OK(q.status());
  EXPECT_EQ(*q->Execute()->Count(), 1u);
  // New facts arrive through a later Load/Compile; the cached rewrite
  // must not pin the old fact set.
  ASSERT_OK(session->Load("edge(b, c)."));
  EXPECT_EQ(*q->Execute()->Count(), 2u);
  // New rules too.
  ASSERT_OK(session->Load("path(X, Y) :- back(X, Y). back(a, q)."));
  EXPECT_EQ(*q->Execute()->Count(), 3u);
}

TEST(DemandExecutionTest, AddFactInvalidatesCachedRewrite) {
  auto session = Load(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("path(a, X)");
  ASSERT_OK(q.status());
  EXPECT_EQ(*q->Execute()->Count(), 1u);
  // AddFact bypasses Load/Compile but still changes the program; the
  // cached rewrite (which snapshots the fact set) must not go stale.
  TermStore* store = session->store();
  ASSERT_OK(session->AddFact(
      "edge", {store->MakeConstant("b"), store->MakeConstant("c")}));
  EXPECT_EQ(*q->Execute()->Count(), 2u);
}

TEST(DemandExecutionTest, FactOnlyMutationReusesCachedRewrite) {
  auto session = Load(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("path(a, X)");
  ASSERT_OK(q.status());
  EXPECT_EQ(*q->Execute()->Count(), 1u);
  EXPECT_EQ(session->demand_rewrite_count(), 1u);

  // Fact-only commits bump fact_epoch() but not rule_epoch(): the
  // cached rewrite (a pure function of the rules) answers over the new
  // fact set without re-running the magic transformation.
  MutationBatch grow = session->Mutate();
  ASSERT_OK(grow.AddText("edge(b, c)"));
  ASSERT_OK(grow.Commit());
  EXPECT_EQ(*q->Execute()->Count(), 2u);
  EXPECT_EQ(session->demand_rewrite_count(), 1u);  // cache hit

  MutationBatch shrink = session->Mutate();
  ASSERT_OK(shrink.RetractText("edge(a, b)"));
  ASSERT_OK(shrink.Commit());
  EXPECT_EQ(*q->Execute()->Count(), 0u);  // a is cut off
  EXPECT_EQ(session->demand_rewrite_count(), 1u);  // still cached

  // A rule commit moves rule_epoch() and invalidates the cache.
  ASSERT_OK(session->Load("path(X, Y) :- back(X, Y). back(a, q)."));
  EXPECT_EQ(*q->Execute()->Count(), 1u);
  EXPECT_EQ(session->demand_rewrite_count(), 2u);
}

TEST(DemandExecutionTest, EligibilityRefreshesWhenRulesAppearLater) {
  // Prepared while the predicate is fact-only (not a demand
  // candidate); rules arrive afterwards and the same handle must
  // re-decide and take the demand path.
  auto session = Load("path(a, z). edge(a, b).");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("path(a, X)");
  ASSERT_OK(q.status());
  EXPECT_FALSE(q->goal_plan().demand_candidate);
  ASSERT_OK(session->Load(
      "path(X, Y) :- edge(X, Y). path(X, Z) :- path(X, Y), edge(Y, Z)."));
  EXPECT_EQ(*q->Execute()->Count(), 2u);  // z (fact) + b (derived)
  // The demand path ran: session database untouched, magic stats set.
  EXPECT_EQ(session->database()->TupleCount(), 0u);
  EXPECT_EQ(session->eval_stats().magic_predicates, 1u);
}

TEST(DemandExecutionTest, ExplicitDemandFallsBackToFullFixpoint) {
  auto session = Load(R"(
    s({1, 2}). q(1). q(2).
    allq(X) :- s(X), forall E in X : q(E).
  )");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("allq({1, 2})");
  ASSERT_OK(q.status());
  // Quantifiers are outside the magic fragment: ExecuteDemand evaluates
  // the session database in full and scans it.
  auto cursor = q->ExecuteDemand();
  ASSERT_OK(cursor.status());
  EXPECT_EQ(*cursor->Count(), 1u);
  EXPECT_NE(
      session->eval_stats().demand_fallback_reason.find("quantifier"),
      std::string::npos);
  EXPECT_GT(session->database()->TupleCount(), 0u);
}

TEST(DemandExecutionTest, GroupingGoalWithBoundKeyRunsDemandDriven) {
  // A grouping head over a derived relation: the demanded key's group
  // must match the full fixpoint's group exactly while the rest of the
  // key space is never grouped.
  std::string src;
  for (int i = 0; i < 12; ++i) {
    for (int j = 0; j < 4; ++j) {
      src += "emp(d" + std::to_string(i) + ", e" + std::to_string(i) +
             "_" + std::to_string(j) + ").\n";
    }
  }
  src += "staff(D, E) :- emp(D, E).\n";
  src += "team(D, <E>) :- staff(D, E).\n";
  auto session = Load(src);
  ASSERT_OK(session->Evaluate());

  auto full = SortedAnswers(session.get(), "team(d3, S)", false);
  ASSERT_EQ(full.size(), 1u);
  size_t full_tuples = session->eval_stats().tuples_derived;

  auto fresh = Load(src);  // untouched session: no prior Evaluate()
  auto demand = SortedAnswers(fresh.get(), "team(d3, S)", true);
  EXPECT_EQ(demand, full);
  EXPECT_TRUE(fresh->eval_stats().demand_fallback_reason.empty())
      << fresh->eval_stats().demand_fallback_reason;
  EXPECT_GT(fresh->eval_stats().magic_predicates, 0u);
  EXPECT_EQ(fresh->eval_stats().groups_emitted, 1u)
      << "demand must group only the demanded key";
  // Both counts include the 48 loaded EDB facts; the derived remainder
  // is 6 demand tuples vs 60 for the full fixpoint.
  EXPECT_LT(fresh->eval_stats().tuples_derived, full_tuples)
      << "demand evaluation should derive fewer tuples";
  // The session database stays untouched (private demand database).
  EXPECT_EQ(fresh->database()->TupleCount(), 0u);
}

TEST(DemandExecutionTest, BoundSetConstantGoalIsDemandDriven) {
  auto session = Load(R"(
    owns(alice, {gold, silver}). owns(bob, {tin}).
    owns(carol, {gold, silver}).
    rich(P, S) :- owns(P, S).
  )");
  ASSERT_OK(session->Evaluate());
  auto full = SortedAnswers(session.get(), "rich(X, {gold, silver})",
                            false);
  auto fresh = Load(R"(
    owns(alice, {gold, silver}). owns(bob, {tin}).
    owns(carol, {gold, silver}).
    rich(P, S) :- owns(P, S).
  )");
  auto demand =
      SortedAnswers(fresh.get(), "rich(X, {gold, silver})", true);
  EXPECT_EQ(demand, full);
  EXPECT_EQ(demand.size(), 2u);  // alice, carol
  EXPECT_TRUE(fresh->eval_stats().demand_fallback_reason.empty())
      << fresh->eval_stats().demand_fallback_reason;
  EXPECT_GT(fresh->eval_stats().magic_predicates, 0u);
}

TEST(DemandExecutionTest, BoundParameterDrivesTheSeed) {
  auto session = Load(R"(
    edge(a, b). edge(b, c). edge(p, q).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )");
  Options options;
  options.demand = true;
  session->set_options(options);
  auto q = session->Prepare("path(S, T)");
  ASSERT_OK(q.status());
  ASSERT_OK(q->BindText("S", "p"));
  EXPECT_EQ(*q->Execute()->Count(), 1u);  // q only
  ASSERT_OK(q->BindText("S", "a"));
  EXPECT_EQ(*q->Execute()->Count(), 2u);  // b, c
  // Unbinding flips the same handle back to the legacy scan path,
  // which sees the (never evaluated) session database.
  q->ClearBindings();
  EXPECT_EQ(*q->Execute()->Count(), 0u);
  EXPECT_NE(session->eval_stats().demand_fallback_reason.find("all-free"),
            std::string::npos);
}

// ---- Equivalence sweep: demand-on vs demand-off -----------------------
//
// Representative programs from across the test suite (bottomup,
// stratify, builtins, ldl, expressiveness). Each goal is executed
// demand-off (full Evaluate + scan) and demand-on (magic or recorded
// fallback); the answer sets must match exactly.

struct SweepCase {
  const char* name;
  const char* source;
  std::vector<const char*> goals;
};

class MagicEquivalenceSweep : public ::testing::TestWithParam<SweepCase> {
};

TEST_P(MagicEquivalenceSweep, DemandMatchesFullFixpoint) {
  for (const char* goal : GetParam().goals) {
    auto full_session = Load(GetParam().source);
    ASSERT_OK(full_session->Evaluate());
    auto full = SortedAnswers(full_session.get(), goal, false);

    auto demand_session = Load(GetParam().source);
    // No up-front Evaluate: demand mode must self-serve (fallbacks run
    // the fixpoint on the session database themselves via Execute()'s
    // demand routing only for bound goals; unbound goals here evaluate
    // first like the legacy contract requires).
    bool has_bound = false;
    {
      auto q = demand_session->Prepare(goal);
      ASSERT_OK(q.status());
      for (TermId a : q->goal().args) {
        has_bound |= demand_session->store()->is_ground(a);
      }
    }
    if (!has_bound) ASSERT_OK(demand_session->Evaluate());
    auto demand = SortedAnswers(demand_session.get(), goal, true);
    EXPECT_EQ(demand, full)
        << GetParam().name << " diverges on goal " << goal;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Programs, MagicEquivalenceSweep,
    ::testing::Values(
        SweepCase{"tc_chain",
                  "edge(a, b). edge(b, c). edge(c, d)."
                  "path(X, Y) :- edge(X, Y)."
                  "path(X, Z) :- path(X, Y), edge(Y, Z).",
                  {"path(a, X)", "path(X, d)", "path(X, Y)",
                   "path(a, d)", "path(d, X)"}},
        SweepCase{"same_generation",
                  "par(c1, p1). par(c2, p1). par(p1, g1). par(p2, g1)."
                  "sg(X, X) :- par(X, Y)."
                  "sg(X, Y) :- par(X, P), sg(P, Q), par(Y, Q).",
                  {"sg(c1, X)", "sg(X, c2)", "sg(c1, c2)"}},
        SweepCase{"stratified_negation",
                  "n(a). n(b). n(c). bad(b)."
                  "r(X) :- bad(X)."
                  "t(X) :- n(X), not r(X).",
                  {"t(a)", "t(b)", "t(X)"}},
        SweepCase{"arithmetic_builtins",
                  "num(1). num(2). num(3)."
                  "succ(X, Y) :- num(X), num(Y), add(X, 1, Y)."
                  "reach(X, Y) :- succ(X, Y)."
                  "reach(X, Z) :- reach(X, Y), succ(Y, Z).",
                  {"reach(1, X)", "reach(X, 3)", "reach(1, 3)"}},
        SweepCase{"mixed_facts_and_rules",
                  "path(a, z). edge(a, b). edge(b, c)."
                  "path(X, Y) :- edge(X, Y)."
                  "path(X, Z) :- path(X, Y), edge(Y, Z).",
                  {"path(a, X)", "path(a, z)", "path(X, z)"}},
        SweepCase{"quantifier_fallback",
                  "s({1, 2}). s({3}). q(1). q(2)."
                  "allq(X) :- s(X), forall E in X : q(E).",
                  {"allq({1, 2})", "allq(X)"}},
        SweepCase{"grouping",
                  "part(a, 1). part(a, 2). part(b, 3)."
                  "grp(X, <P>) :- part(X, P).",
                  {"grp(a, X)", "grp(X, Y)", "grp(X, {1, 2})",
                   "grp(a, {1, 2})", "grp(b, {1, 2})"}},
        SweepCase{"grouping_over_recursion",
                  "sub(o1, o2). sub(o2, o3). part_of(p1, o1)."
                  "part_of(p2, o2). part_of(p3, o3)."
                  "uses(O, S) :- sub(O, S)."
                  "uses(O, S2) :- uses(O, S), sub(S, S2)."
                  "haspart(O, P) :- part_of(P, O)."
                  "haspart(O, P) :- uses(O, S), part_of(P, S)."
                  "partset(O, <P>) :- haspart(O, P).",
                  {"partset(o1, X)", "partset(o2, X)", "partset(X, Y)"}},
        SweepCase{"ground_set_args",
                  "tag(x1, {hot}). tag(x2, {cold}). tag(x3, {hot})."
                  "warm(X) :- tag(X, {hot})."
                  "linked(X, Y) :- warm(X), warm(Y).",
                  {"linked(x1, X)", "linked(X, x3)", "linked(X, Y)"}},
        SweepCase{"set_membership_rules",
                  "s({1, 2}). s({2, 3})."
                  "has(X) :- s(S), X in S.",
                  {"has(2)", "has(X)"}},
        SweepCase{"diamond_multi_rule",
                  "e1(a, b). e2(a, c). e1(b, d). e2(c, d)."
                  "hop(X, Y) :- e1(X, Y). hop(X, Y) :- e2(X, Y)."
                  "tc(X, Y) :- hop(X, Y)."
                  "tc(X, Z) :- tc(X, Y), hop(Y, Z).",
                  {"tc(a, X)", "tc(a, d)", "tc(X, d)"}}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace lps
