// Tests for the dependency graph, reachability pruning, and program
// statistics.
#include "transform/analysis.h"

#include <gtest/gtest.h>

#include "eval/engine.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

class AnalysisTest : public ::testing::Test {
 protected:
  void Load(const std::string& src,
            LanguageMode mode = LanguageMode::kLDL) {
    engine_ = std::make_unique<Engine>(mode);
    Status st = engine_->LoadString(src);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }
  PredicateId Pred(const std::string& name, size_t arity) {
    return engine_->signature()->Lookup(name, arity);
  }
  std::unique_ptr<Engine> engine_;
};

TEST_F(AnalysisTest, DependencyEdges) {
  Load(R"(
    p(X) :- q(X), not r(X).
    q(a).
  )");
  DependencyGraph g = DependencyGraph::Build(*engine_->program());
  ASSERT_EQ(g.edges().size(), 2u);
  bool saw_neg = false;
  for (const DependencyEdge& e : g.edges()) {
    if (!e.positive) {
      saw_neg = true;
      EXPECT_EQ(e.to, Pred("r", 1));
    }
  }
  EXPECT_TRUE(saw_neg);
}

TEST_F(AnalysisTest, RecursionDetection) {
  Load(R"(
    edge(a, b).
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
    top(X) :- path(X, X).
  )");
  DependencyGraph g = DependencyGraph::Build(*engine_->program());
  EXPECT_TRUE(g.IsRecursive(Pred("path", 2)));
  EXPECT_FALSE(g.IsRecursive(Pred("edge", 2)));
  EXPECT_FALSE(g.IsRecursive(Pred("top", 1)));
  EXPECT_FALSE(g.HasNegativeCycle());
}

TEST_F(AnalysisTest, NegativeCycleDetection) {
  Load(R"(
    p(X) :- q(X), not r(X).
    r(X) :- p(X).
    q(a).
  )");
  DependencyGraph g = DependencyGraph::Build(*engine_->program());
  EXPECT_TRUE(g.HasNegativeCycle());
}

TEST_F(AnalysisTest, ReachabilityAndPruning) {
  Load(R"(
    a(1). b(2). c(3).
    wanted(X) :- a(X).
    helper(X) :- b(X).
    unwanted(X) :- helper(X), c(X).
  )");
  DependencyGraph g = DependencyGraph::Build(*engine_->program());
  auto reach = g.Reachable({Pred("wanted", 1)});
  EXPECT_EQ(reach.size(), 2u);  // wanted, a

  Program pruned =
      PruneUnreachable(*engine_->program(), {Pred("wanted", 1)});
  EXPECT_EQ(pruned.clauses().size(), 1u);
  EXPECT_EQ(pruned.facts().size(), 1u);  // only a(1)

  // The pruned program still computes the root's relation.
  Database db(engine_->store(), &pruned.signature());
  auto stats = EvaluateProgram(pruned, &db);
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(
      db.Contains(Pred("wanted", 1), {engine_->store()->MakeInt(1)}));
}

TEST_F(AnalysisTest, PruningKeepsTransitiveSupport) {
  Load(R"(
    base(1).
    mid(X) :- base(X).
    top(X) :- mid(X).
  )");
  Program pruned =
      PruneUnreachable(*engine_->program(), {Pred("top", 1)});
  EXPECT_EQ(pruned.clauses().size(), 2u);
  EXPECT_EQ(pruned.facts().size(), 1u);
}

TEST_F(AnalysisTest, StatsSummarise) {
  Load(R"(
    s({1, 2}).
    q(1).
    allq(X) :- s(X), forall E in X : q(E).
    neg(X) :- s(X), not allq(X).
    grp(X, <E>) :- s(X), E in X.
  )");
  ProgramStats stats = AnalyzeProgram(*engine_->program());
  EXPECT_EQ(stats.facts, 2u);
  EXPECT_GE(stats.clauses, 3u);
  EXPECT_GE(stats.quantified_clauses, 1u);
  EXPECT_EQ(stats.grouping_clauses, 1u);
  EXPECT_EQ(stats.negated_literals, 1u);
  EXPECT_GE(stats.builtin_literals, 1u);
  EXPECT_EQ(stats.recursive_predicates, 0u);
  std::string text = ProgramStatsToString(stats);
  EXPECT_NE(text.find("grouping=1"), std::string::npos);
}

TEST_F(AnalysisTest, TheoremSixAuxiliariesPruneAway) {
  // Compile a disjunctive rule, then prune from a root that does not
  // use it: the Theorem 6 auxiliaries disappear.
  Load(R"(
    q(a). r(b). z(c).
    either(X) :- q(X) ; r(X).
    solo(X) :- z(X).
  )");
  size_t before = engine_->program()->clauses().size();
  Program pruned =
      PruneUnreachable(*engine_->program(), {Pred("solo", 1)});
  EXPECT_LT(pruned.clauses().size(), before);
  EXPECT_EQ(pruned.clauses().size(), 1u);
}

}  // namespace
}  // namespace lps
