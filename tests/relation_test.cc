// Tests for tuple storage, indexes, and the active-domain database.
#include "eval/relation.h"

#include <gtest/gtest.h>

#include "eval/database.h"

namespace lps {
namespace {

TEST(RelationTest, InsertDedupsAndKeepsOrder) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({3, 4}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.tuple(0), (Tuple{1, 2}));
  EXPECT_EQ(rel.tuple(1), (Tuple{3, 4}));
  EXPECT_TRUE(rel.Contains({3, 4}));
  EXPECT_FALSE(rel.Contains({4, 3}));
}

TEST(RelationTest, IndexLookupByMask) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.Insert({2, 10});
  // Mask 0b01: first column bound.
  const auto& ones = rel.Lookup(0b01, {1, 0});
  EXPECT_EQ(ones.size(), 2u);
  // Mask 0b10: second column bound.
  const auto& tens = rel.Lookup(0b10, {0, 10});
  EXPECT_EQ(tens.size(), 2u);
  // Full mask.
  EXPECT_EQ(rel.Lookup(0b11, {2, 10}).size(), 1u);
  EXPECT_TRUE(rel.Lookup(0b11, {2, 20}).empty());
}

TEST(RelationTest, IndexCatchesUpAfterInserts) {
  Relation rel(1);
  rel.Insert({7});
  EXPECT_EQ(rel.Lookup(0b1, {7}).size(), 1u);
  rel.Insert({7});  // duplicate: no change
  rel.Insert({8});
  EXPECT_EQ(rel.Lookup(0b1, {8}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b1, {7}).size(), 1u);
}

TEST(RelationTest, EmptyMaskScansEverything) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Insert({3, 4});
  EXPECT_EQ(rel.Lookup(0, {0, 0}).size(), 2u);
  std::vector<uint32_t> all;
  rel.AllIndices(&all);
  EXPECT_EQ(all.size(), 2u);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.Lookup(0, {}).size(), 1u);
}

// ---- Index maintenance and snapshot reads (parallel evaluator) -------

TEST(RelationTest, LookupSeesTuplesInsertedAfterIndexBuild) {
  Relation rel(2);
  rel.Insert({1, 10});
  // Build the first-column index, then keep growing the relation.
  EXPECT_EQ(rel.Lookup(0b01, {1, 0}).size(), 1u);
  rel.Insert({1, 20});
  rel.Insert({2, 30});
  rel.Insert({1, 40});
  // The index catches up incrementally and in insertion order.
  const auto& hits = rel.Lookup(0b01, {1, 0});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
  EXPECT_EQ(hits[2], 3u);
  // A second mask built late still sees everything.
  EXPECT_EQ(rel.Lookup(0b10, {0, 20}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b11, {1, 40}).size(), 1u);
}

TEST(RelationTest, EnsureIndexCoversSnapshotProbes) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.EnsureIndex(0b01);
  std::vector<uint32_t> out;
  // Fully built index: the probe reports an index hit.
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(RelationTest, SnapshotReadsDuringGrowthStayAtWatermark) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.EnsureIndex(0b01);
  size_t watermark = rel.size();
  // The relation grows past the watermark without the index catching
  // up - exactly the state between two parallel iterations.
  rel.Insert({1, 30});
  rel.Insert({1, 40});
  std::vector<uint32_t> out;
  // Probing at the old watermark still hits the prebuilt index and
  // must not surface post-watermark tuples.
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, watermark, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
  // Probing the full size falls back to a scan (the index is stale)
  // but remains correct.
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
  // After EnsureIndex catches up, the same probe is indexed again.
  rel.EnsureIndex(0b01);
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(RelationTest, SnapshotWithoutIndexFallsBackToScan) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.Insert({1, 30});
  std::vector<uint32_t> out;
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 2}));
  // Watermark below size() truncates the scan too.
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, 1, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0}));
}

TEST(RelationTest, SnapshotEmptyMaskEnumeratesWatermarkPrefix) {
  Relation rel(1);
  rel.Insert({5});
  rel.Insert({6});
  rel.Insert({7});
  std::vector<uint32_t> out;
  EXPECT_TRUE(rel.LookupSnapshot(0, {0}, 2, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : sig_(&store_.symbols()), db_(&store_, &sig_) {}
  TermStore store_;
  Signature sig_;
  Database db_;
};

TEST_F(DatabaseTest, EmptySetAlwaysActive) {
  ASSERT_EQ(db_.set_domain().size(), 1u);
  EXPECT_EQ(db_.set_domain()[0], store_.EmptySet());
}

TEST_F(DatabaseTest, AddTupleRegistersTermsRecursively) {
  PredicateId p = *sig_.Declare("p", {Sort::kSet});
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId inner = store_.MakeSet({a});
  TermId outer = store_.MakeSet({inner, b});
  EXPECT_TRUE(db_.AddTuple(p, {outer}));
  // outer and inner are sets; a and b are atoms.
  EXPECT_EQ(db_.set_domain().size(), 3u);  // {}, inner, outer
  EXPECT_EQ(db_.atom_domain().size(), 2u);
  EXPECT_FALSE(db_.AddTuple(p, {outer}));  // duplicate
  EXPECT_EQ(db_.TupleCount(), 1u);
}

TEST_F(DatabaseTest, VersionBumpsOnNovelty) {
  PredicateId p = *sig_.Declare("p", {Sort::kAtom});
  uint64_t v0 = db_.version();
  db_.AddTuple(p, {store_.MakeConstant("a")});
  uint64_t v1 = db_.version();
  EXPECT_GT(v1, v0);
  db_.AddTuple(p, {store_.MakeConstant("a")});
  EXPECT_EQ(db_.version(), v1);  // duplicate: no bump
}

TEST_F(DatabaseTest, RegisterTermSkipsNonGround) {
  size_t atoms = db_.atom_domain().size();
  db_.RegisterTerm(store_.MakeVariable("X", Sort::kAtom));
  EXPECT_EQ(db_.atom_domain().size(), atoms);
}

TEST_F(DatabaseTest, ToStringDeterministic) {
  PredicateId p = *sig_.Declare("p", {Sort::kAtom});
  PredicateId q = *sig_.Declare("q", {Sort::kAtom});
  db_.AddTuple(q, {store_.MakeConstant("b")});
  db_.AddTuple(p, {store_.MakeConstant("a")});
  EXPECT_EQ(db_.ToString(sig_), "p(a).\nq(b).\n");
}

}  // namespace
}  // namespace lps
