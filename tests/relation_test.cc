// Tests for tuple storage, indexes, and the active-domain database.
#include "eval/relation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "eval/database.h"

namespace lps {
namespace {

TEST(RelationTest, InsertDedupsAndKeepsOrder) {
  Relation rel(2);
  EXPECT_TRUE(rel.Insert({1, 2}));
  EXPECT_TRUE(rel.Insert({3, 4}));
  EXPECT_FALSE(rel.Insert({1, 2}));
  EXPECT_EQ(rel.size(), 2u);
  EXPECT_EQ(rel.MaterializeRow(0), (Tuple{1, 2}));
  EXPECT_EQ(rel.MaterializeRow(1), (Tuple{3, 4}));
  EXPECT_TRUE(rel.Contains({3, 4}));
  EXPECT_FALSE(rel.Contains({4, 3}));
}

TEST(RelationTest, TombstoneChurnKeepsDedupAndLiveViewsCoherent) {
  // Retraction is tombstoning (eval/incremental.h drives it): erase
  // hides the row from Contains/FindRow/live_size but never compacts
  // the arena; Revive undoes an over-delete in place; and a fresh
  // insert of an erased tuple revives its original row rather than
  // appending a duplicate, so toggle churn runs at steady arena size.
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.Insert({3, 30});
  const Tuple probe{2, 20};
  ASSERT_EQ(rel.Find(probe), 1u);

  EXPECT_TRUE(rel.EraseRow(1));
  EXPECT_FALSE(rel.EraseRow(1));  // already dead
  EXPECT_FALSE(rel.IsLive(1));
  EXPECT_FALSE(rel.Contains({2, 20}));
  EXPECT_EQ(rel.Find(probe), Relation::kNoRow);
  EXPECT_EQ(rel.size(), 3u);       // arena never compacts
  EXPECT_EQ(rel.live_size(), 2u);  // tombstone counted out

  // Live-row enumeration skips the corpse.
  std::vector<RowId> live;
  rel.AllIndices(&live);
  EXPECT_EQ(live, (std::vector<RowId>{0, 2}));

  // Erase + Revive round-trip (the DRed rederive path).
  EXPECT_TRUE(rel.Revive(1));
  EXPECT_FALSE(rel.Revive(1));  // already live
  EXPECT_TRUE(rel.Contains({2, 20}));
  EXPECT_EQ(rel.live_size(), 3u);

  // Dedup stays exact through churn: re-inserting a live tuple is
  // still a no-op, and after a second erase a fresh insert of the
  // same tuple revives row 1 in place - the arena does not grow.
  EXPECT_FALSE(rel.Insert({2, 20}));
  EXPECT_TRUE(rel.EraseRow(1));
  Relation::InsertOutcome out = rel.InsertRow(probe);
  EXPECT_TRUE(out.added);
  EXPECT_TRUE(out.revived);
  EXPECT_EQ(out.row, 1u);
  EXPECT_EQ(rel.size(), 3u);
  EXPECT_EQ(rel.live_size(), 3u);
  EXPECT_EQ(rel.Find(probe), 1u);
  EXPECT_FALSE(rel.Revive(1));  // already live again
  // And a reviving insert ticks the content version like any other
  // successful mutation.
  const uint64_t tick = rel.content_tick();
  EXPECT_TRUE(rel.EraseRow(1));
  EXPECT_GT(rel.content_tick(), tick);
  out = rel.InsertRow(probe);
  EXPECT_TRUE(out.revived);
  EXPECT_GT(rel.content_tick(), tick);
}

TEST(RelationTest, ContentTickAdvancesOnMutationOnly) {
  // The copy-on-write sharing witness (Database::CloneIntoCow): ticks
  // are process-globally unique, advance on every successful content
  // mutation, stand still on no-ops and reads, and copies carry their
  // source's tick - so tick equality across a clone lineage certifies
  // identical content.
  Relation rel(2);
  const uint64_t born = rel.content_tick();
  EXPECT_GT(born, 0u);

  EXPECT_TRUE(rel.Insert({1, 2}));
  const uint64_t after_insert = rel.content_tick();
  EXPECT_GT(after_insert, born);
  EXPECT_FALSE(rel.Insert({1, 2}));  // dedup no-op: tick stands still
  EXPECT_EQ(rel.content_tick(), after_insert);
  EXPECT_TRUE(rel.Contains({1, 2}));  // reads never tick
  EXPECT_EQ(rel.content_tick(), after_insert);

  EXPECT_TRUE(rel.EraseRow(0));
  const uint64_t after_erase = rel.content_tick();
  EXPECT_GT(after_erase, after_insert);
  EXPECT_FALSE(rel.EraseRow(0));  // already dead: no-op
  EXPECT_EQ(rel.content_tick(), after_erase);

  EXPECT_TRUE(rel.Revive(0));
  EXPECT_GT(rel.content_tick(), after_erase);

  // A copy inherits the tick (identical content), and a fresh relation
  // never collides with it even when its row/tombstone counts match.
  Relation copy(rel);
  EXPECT_EQ(copy.content_tick(), rel.content_tick());
  Relation twin(2);
  twin.Insert({1, 2});
  twin.EraseRow(0);
  twin.Revive(0);
  EXPECT_NE(twin.content_tick(), rel.content_tick());
  // Diverging the copy re-stamps it.
  EXPECT_TRUE(copy.Insert({3, 4}));
  EXPECT_NE(copy.content_tick(), rel.content_tick());
}

TEST(RelationTest, IndexLookupByMask) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.Insert({2, 10});
  // Mask 0b01: first column bound.
  const auto& ones = rel.Lookup(0b01, {1, 0});
  EXPECT_EQ(ones.size(), 2u);
  // Mask 0b10: second column bound.
  const auto& tens = rel.Lookup(0b10, {0, 10});
  EXPECT_EQ(tens.size(), 2u);
  // Full mask.
  EXPECT_EQ(rel.Lookup(0b11, {2, 10}).size(), 1u);
  EXPECT_TRUE(rel.Lookup(0b11, {2, 20}).empty());
}

TEST(RelationTest, IndexCatchesUpAfterInserts) {
  Relation rel(1);
  rel.Insert({7});
  EXPECT_EQ(rel.Lookup(0b1, {7}).size(), 1u);
  rel.Insert({7});  // duplicate: no change
  rel.Insert({8});
  EXPECT_EQ(rel.Lookup(0b1, {8}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b1, {7}).size(), 1u);
}

TEST(RelationTest, EmptyMaskScansEverything) {
  Relation rel(2);
  rel.Insert({1, 2});
  rel.Insert({3, 4});
  EXPECT_EQ(rel.Lookup(0, {0, 0}).size(), 2u);
  std::vector<uint32_t> all;
  rel.AllIndices(&all);
  EXPECT_EQ(all.size(), 2u);
}

TEST(RelationTest, ZeroArityRelation) {
  Relation rel(0);
  EXPECT_TRUE(rel.Insert({}));
  EXPECT_FALSE(rel.Insert({}));
  EXPECT_EQ(rel.Lookup(0, {}).size(), 1u);
}

// ---- Index maintenance and snapshot reads (parallel evaluator) -------

TEST(RelationTest, LookupSeesTuplesInsertedAfterIndexBuild) {
  Relation rel(2);
  rel.Insert({1, 10});
  // Build the first-column index, then keep growing the relation.
  EXPECT_EQ(rel.Lookup(0b01, {1, 0}).size(), 1u);
  rel.Insert({1, 20});
  rel.Insert({2, 30});
  rel.Insert({1, 40});
  // The index catches up incrementally and in insertion order.
  const auto& hits = rel.Lookup(0b01, {1, 0});
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 1u);
  EXPECT_EQ(hits[2], 3u);
  // A second mask built late still sees everything.
  EXPECT_EQ(rel.Lookup(0b10, {0, 20}).size(), 1u);
  EXPECT_EQ(rel.Lookup(0b11, {1, 40}).size(), 1u);
}

TEST(RelationTest, EnsureIndexCoversSnapshotProbes) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.EnsureIndex(0b01);
  std::vector<uint32_t> out;
  // Fully built index: the probe reports an index hit.
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 0u);
}

TEST(RelationTest, SnapshotReadsDuringGrowthStayAtWatermark) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({1, 20});
  rel.EnsureIndex(0b01);
  size_t watermark = rel.size();
  // The relation grows past the watermark without the index catching
  // up - exactly the state between two parallel iterations.
  rel.Insert({1, 30});
  rel.Insert({1, 40});
  std::vector<uint32_t> out;
  // Probing at the old watermark still hits the prebuilt index and
  // must not surface post-watermark tuples.
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, watermark, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
  // Probing the full size falls back to a scan (the index is stale)
  // but remains correct.
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
  // After EnsureIndex catches up, the same probe is indexed again.
  rel.EnsureIndex(0b01);
  EXPECT_TRUE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(RelationTest, SnapshotWithoutIndexFallsBackToScan) {
  Relation rel(2);
  rel.Insert({1, 10});
  rel.Insert({2, 20});
  rel.Insert({1, 30});
  std::vector<uint32_t> out;
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, rel.size(), &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 2}));
  // Watermark below size() truncates the scan too.
  EXPECT_FALSE(rel.LookupSnapshot(0b01, {1, 0}, 1, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0}));
}

TEST(RelationTest, SnapshotEmptyMaskEnumeratesWatermarkPrefix) {
  Relation rel(1);
  rel.Insert({5});
  rel.Insert({6});
  rel.Insert({7});
  std::vector<uint32_t> out;
  EXPECT_TRUE(rel.LookupSnapshot(0, {0}, 2, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1}));
}

// ---- Storage parity: randomized differential vs a linear-scan oracle -

// What the storage engine must implement, spelled out the slow way.
std::vector<RowId> OracleLookup(const std::vector<Tuple>& rows,
                                uint32_t mask, const Tuple& key,
                                size_t watermark) {
  std::vector<RowId> out;
  if (watermark > rows.size()) watermark = rows.size();
  for (size_t i = 0; i < watermark; ++i) {
    bool match = true;
    for (size_t c = 0; c < rows[i].size() && match; ++c) {
      if (MaskHasColumn(mask, c) && rows[i][c] != key[c]) match = false;
    }
    if (match) out.push_back(static_cast<RowId>(i));
  }
  return out;
}

uint64_t XorShift(uint64_t* s) {
  *s ^= *s << 13;
  *s ^= *s >> 7;
  *s ^= *s << 17;
  return *s;
}

TEST(RelationTest, RandomizedLookupMatchesLinearScanOracle) {
  constexpr size_t kArity = 3;
  constexpr TermId kUniverse = 6;  // small: plenty of dups + collisions
  uint64_t seed = 0xC0FFEE;
  Relation rel(kArity);
  std::vector<Tuple> rows;  // insertion-order oracle copy (dedup'd)

  auto random_tuple = [&] {
    Tuple t(kArity);
    for (size_t c = 0; c < kArity; ++c) {
      t[c] = static_cast<TermId>(XorShift(&seed) % kUniverse);
    }
    return t;
  };

  for (int op = 0; op < 4000; ++op) {
    uint64_t dice = XorShift(&seed) % 10;
    if (dice < 5) {
      Tuple t = random_tuple();
      bool oracle_new =
          std::find(rows.begin(), rows.end(), t) == rows.end();
      ASSERT_EQ(rel.Insert(t), oracle_new) << "op " << op;
      if (oracle_new) rows.push_back(std::move(t));
      ASSERT_EQ(rel.size(), rows.size());
    } else if (dice < 6) {
      // Build / catch up an index mid-stream at a random mask.
      rel.EnsureIndex(static_cast<uint32_t>(XorShift(&seed) % 8));
    } else if (dice < 8) {
      uint32_t mask = static_cast<uint32_t>(XorShift(&seed) % 8);
      Tuple key = random_tuple();
      ASSERT_EQ(rel.Lookup(mask, key),
                OracleLookup(rows, mask, key, rows.size()))
          << "op " << op << " mask " << mask;
    } else {
      uint32_t mask = static_cast<uint32_t>(XorShift(&seed) % 8);
      Tuple key = random_tuple();
      size_t watermark = XorShift(&seed) % (rows.size() + 2);
      std::vector<RowId> out;
      // Indexed or scan fallback, the result must match the oracle.
      rel.LookupSnapshot(mask, key, watermark, &out);
      ASSERT_EQ(out, OracleLookup(rows, mask, key, watermark))
          << "op " << op << " mask " << mask << " mark " << watermark;
    }
  }
  // Contains parity over everything stored plus fresh randoms.
  for (const Tuple& t : rows) ASSERT_TRUE(rel.Contains(t));
  for (int i = 0; i < 200; ++i) {
    Tuple t = random_tuple();
    ASSERT_EQ(rel.Contains(t),
              std::find(rows.begin(), rows.end(), t) != rows.end());
  }
}

// ---- Mask-width (arity) limit guard ----------------------------------

TEST(RelationTest, ColumnsPastMaskWidthAreNeverMaskBound) {
  static_assert(Relation::kMaxIndexedColumns == 32);
  EXPECT_EQ(ColumnBit(0), 1u);
  EXPECT_EQ(ColumnBit(31), 1u << 31);
  EXPECT_EQ(ColumnBit(32), 0u);   // would be UB as 1u << 32
  EXPECT_EQ(ColumnBit(40), 0u);
  EXPECT_TRUE(MaskHasColumn(0xffffffffu, 31));
  EXPECT_FALSE(MaskHasColumn(0xffffffffu, 32));
}

TEST(RelationTest, WideRelationStoresAndScansPastColumn32) {
  constexpr size_t kWide = 40;
  Relation rel(kWide);
  Tuple a(kWide), b(kWide);
  for (size_t i = 0; i < kWide; ++i) a[i] = b[i] = static_cast<TermId>(i);
  b[35] = 999;  // differs only past the mask width
  EXPECT_TRUE(rel.Insert(a));
  EXPECT_TRUE(rel.Insert(b));   // dedup compares the full row
  EXPECT_FALSE(rel.Insert(a));
  EXPECT_TRUE(rel.Contains(b));
  // An all-ones mask binds only the first 32 columns, so both rows
  // match a key equal to `a` (they agree there); column 35 must be
  // re-checked by the caller's scan-side equality, not the index.
  EXPECT_EQ(rel.Lookup(0xffffffffu, a).size(), 2u);
  // The snapshot scan fallback applies the same masking rule.
  Relation fresh(kWide);
  fresh.Insert(a);
  fresh.Insert(b);
  std::vector<RowId> out;
  EXPECT_FALSE(fresh.LookupSnapshot(0xffffffffu, a, fresh.size(), &out));
  EXPECT_EQ(out, (std::vector<RowId>{0, 1}));
}

// ---- Storage accounting ----------------------------------------------

TEST(RelationTest, StorageAccountingTracksArenaAndIndexes) {
  Relation rel(2);
  EXPECT_EQ(rel.ArenaBytes(), 0u);
  EXPECT_EQ(rel.dedup_probes(), 0u);
  for (TermId i = 0; i < 100; ++i) rel.Insert({i, i + 1});
  EXPECT_GE(rel.ArenaBytes(), 100 * 2 * sizeof(TermId));
  EXPECT_GE(rel.dedup_probes(), 100u);
  size_t before_index = rel.IndexBytes();  // dedup table only
  rel.EnsureIndex(0b01);
  EXPECT_GT(rel.IndexBytes(), before_index);
}

// ---- Bulk insert with presized dedup (Reserve) -----------------------

// Differential: a relation presized up front via Reserve() and driven
// through insert / erase / revive churn must be operation-for-operation
// identical to an unreserved twin that grows one doubling at a time -
// same InsertRow outcomes (added / revived / row), same live views,
// same arena layout - with the presized table paying zero growth
// rehashes during the run. Interleaves tombstone revivals throughout
// because the bulk-load merge stage presizes tables that may already
// hold dead rows.
TEST(RelationTest, BulkInsertWithPresizeMatchesOneAtATimeOracle) {
  Relation presized(2);
  Relation oracle(2);
  constexpr size_t kOps = 4000;
  EXPECT_GT(presized.Reserve(kOps), 0u);   // skipped >= 1 doubling
  EXPECT_EQ(presized.Reserve(0), 0u);      // already big enough: no-op
  EXPECT_EQ(presized.Reserve(kOps), 0u);   // idempotent

  uint64_t rng = 0x9e3779b97f4a7c15ULL;    // deterministic LCG
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    return rng >> 33;
  };
  for (size_t i = 0; i < kOps; ++i) {
    const TermId a = static_cast<TermId>(next() % 61);
    const TermId b = static_cast<TermId>(next() % 53);
    const Tuple t{a, b};
    switch (next() % 4) {
      case 0:
      case 1: {  // insert: fresh append, revival, or live dup
        const Relation::InsertOutcome po = presized.InsertRow(t);
        const Relation::InsertOutcome oo = oracle.InsertRow(t);
        ASSERT_EQ(po.added, oo.added);
        ASSERT_EQ(po.revived, oo.revived);
        ASSERT_EQ(po.row, oo.row);
        break;
      }
      case 2: {  // erase whatever Find sees (live rows only)
        const RowId pr = presized.Find(t);
        ASSERT_EQ(pr, oracle.Find(t));
        if (pr != Relation::kNoRow) {
          EXPECT_TRUE(presized.EraseRow(pr));
          EXPECT_TRUE(oracle.EraseRow(pr));
        }
        break;
      }
      default: {  // revive an arbitrary row by id
        if (presized.size() > 0) {
          const RowId r = static_cast<RowId>(next() % presized.size());
          ASSERT_EQ(presized.Revive(r), oracle.Revive(r));
        }
        break;
      }
    }
    ASSERT_EQ(presized.size(), oracle.size());
    ASSERT_EQ(presized.live_size(), oracle.live_size());
  }

  // One arena row per distinct tuple value, ever: 4000 churn ops never
  // grow the arena past the 61*53 value space.
  EXPECT_LE(presized.size(), 61u * 53u);
  EXPECT_GT(presized.size(), 0u);
  for (RowId r = 0; r < presized.size(); ++r) {
    ASSERT_EQ(presized.MaterializeRow(r), oracle.MaterializeRow(r));
    ASSERT_EQ(presized.IsLive(r), oracle.IsLive(r));
  }
  // Mask lookups agree row for row after the churn.
  presized.EnsureIndex(0b01);
  oracle.EnsureIndex(0b01);
  for (TermId a = 0; a < 61; ++a) {
    std::vector<RowId> pv = presized.Lookup(0b01, {a, 0});
    std::vector<RowId> ov = oracle.Lookup(0b01, {a, 0});
    ASSERT_EQ(pv, ov) << "postings diverge for key " << a;
  }
}

class DatabaseTest : public ::testing::Test {
 protected:
  DatabaseTest() : sig_(&store_.symbols()), db_(&store_, &sig_) {}
  TermStore store_;
  Signature sig_;
  Database db_;
};

TEST_F(DatabaseTest, EmptySetAlwaysActive) {
  ASSERT_EQ(db_.set_domain().size(), 1u);
  EXPECT_EQ(db_.set_domain()[0], store_.EmptySet());
}

TEST_F(DatabaseTest, AddTupleRegistersTermsRecursively) {
  PredicateId p = *sig_.Declare("p", {Sort::kSet});
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  TermId inner = store_.MakeSet({a});
  TermId outer = store_.MakeSet({inner, b});
  EXPECT_TRUE(db_.AddTuple(p, {outer}));
  // outer and inner are sets; a and b are atoms.
  EXPECT_EQ(db_.set_domain().size(), 3u);  // {}, inner, outer
  EXPECT_EQ(db_.atom_domain().size(), 2u);
  EXPECT_FALSE(db_.AddTuple(p, {outer}));  // duplicate
  EXPECT_EQ(db_.TupleCount(), 1u);
}

TEST_F(DatabaseTest, VersionBumpsOnNovelty) {
  PredicateId p = *sig_.Declare("p", {Sort::kAtom});
  uint64_t v0 = db_.version();
  db_.AddTuple(p, {store_.MakeConstant("a")});
  uint64_t v1 = db_.version();
  EXPECT_GT(v1, v0);
  db_.AddTuple(p, {store_.MakeConstant("a")});
  EXPECT_EQ(db_.version(), v1);  // duplicate: no bump
}

TEST_F(DatabaseTest, RegisterTermSkipsNonGround) {
  size_t atoms = db_.atom_domain().size();
  db_.RegisterTerm(store_.MakeVariable("X", Sort::kAtom));
  EXPECT_EQ(db_.atom_domain().size(), atoms);
}

TEST_F(DatabaseTest, ToStringDeterministic) {
  PredicateId p = *sig_.Declare("p", {Sort::kAtom});
  PredicateId q = *sig_.Declare("q", {Sort::kAtom});
  db_.AddTuple(q, {store_.MakeConstant("b")});
  db_.AddTuple(p, {store_.MakeConstant("a")});
  EXPECT_EQ(db_.ToString(sig_), "p(a).\nq(b).\n");
}

TEST_F(DatabaseTest, ToStringOrdersByPredicateIdNotInsertion) {
  // Many predicates inserted in reverse and interleaved: the dump must
  // come out in PredicateId order with per-relation insertion order
  // preserved, independent of relations_'s unordered-map iteration.
  std::vector<PredicateId> preds;
  for (char c = 'a'; c <= 'h'; ++c) {
    preds.push_back(*sig_.Declare(std::string(1, c), {Sort::kAtom}));
  }
  TermId x = store_.MakeConstant("x");
  TermId y = store_.MakeConstant("y");
  for (auto it = preds.rbegin(); it != preds.rend(); ++it) {
    db_.AddTuple(*it, {y});
    db_.AddTuple(*it, {x});
  }
  std::string expected;
  for (char c = 'a'; c <= 'h'; ++c) {
    expected += std::string(1, c) + "(y).\n";
    expected += std::string(1, c) + "(x).\n";
  }
  std::string dump = db_.ToString(sig_);
  EXPECT_EQ(dump, expected);
  // And it is stable across repeated calls.
  EXPECT_EQ(db_.ToString(sig_), dump);
}

TEST_F(DatabaseTest, StorageStatsAggregateAcrossRelations) {
  PredicateId p = *sig_.Declare("p", {Sort::kAtom, Sort::kAtom});
  PredicateId q = *sig_.Declare("q", {Sort::kAtom});
  EXPECT_EQ(db_.storage_stats().arena_bytes, 0u);
  TermId a = store_.MakeConstant("a");
  TermId b = store_.MakeConstant("b");
  db_.AddTuple(p, {a, b});
  db_.AddTuple(p, {b, a});
  db_.AddTuple(q, {a});
  Database::StorageStats s = db_.storage_stats();
  EXPECT_GE(s.arena_bytes, 5 * sizeof(TermId));
  EXPECT_GT(s.index_bytes, 0u);  // dedup tables count
  EXPECT_GE(s.dedup_probes, 3u);
}

}  // namespace
}  // namespace lps
