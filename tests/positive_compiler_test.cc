// Tests for the Theorem 6 compiler: positive bodies (disjunction,
// nested quantifiers, exists) lower to pure LPS clauses with auxiliary
// predicates, preserving consequences over the original vocabulary.
#include "transform/positive_compiler.h"

#include <gtest/gtest.h>

#include "eval/engine.h"
#include "lang/validate.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

class CompilerFixture : public ::testing::Test {
 protected:
  CompilerFixture() : program_(&store_) {}

  TermId V(const std::string& n, Sort s = Sort::kAtom) {
    return store_.MakeVariable(n, s);
  }

  TermStore store_;
  Program program_;
  CompileStats stats_;
};

TEST_F(CompilerFixture, ClauseShapedBodiesLowerWithoutAux) {
  PredicateId p = *program_.signature().Declare("p", {Sort::kSet});
  TermId xs = V("Xs", Sort::kSet);
  TermId e = V("E");
  GeneralClause gc;
  gc.head = Literal{p, {xs}, true};
  gc.body = Formula::Forall(
      e, xs, Formula::Atomic(Literal{kPredIn, {e, xs}, true}));
  std::vector<Clause> out;
  ASSERT_OK(CompileGeneralClause(&store_, &program_.signature(), gc,
                                 &out, &stats_));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(stats_.aux_predicates, 0u);
  EXPECT_EQ(out[0].quantifiers.size(), 1u);
  EXPECT_EQ(out[0].body.size(), 1u);
}

TEST_F(CompilerFixture, DisjunctionSplitsClauses) {
  PredicateId p = *program_.signature().Declare("p", {Sort::kAtom});
  PredicateId q = *program_.signature().Declare("q", {Sort::kAtom});
  PredicateId r = *program_.signature().Declare("r", {Sort::kAtom});
  TermId x = V("X");
  GeneralClause gc;
  gc.head = Literal{p, {x}, true};
  std::vector<FormulaPtr> alts;
  alts.push_back(Formula::Atomic(Literal{q, {x}, true}));
  alts.push_back(Formula::Atomic(Literal{r, {x}, true}));
  gc.body = Formula::Or(std::move(alts));
  std::vector<Clause> out;
  ASSERT_OK(CompileGeneralClause(&store_, &program_.signature(), gc,
                                 &out, &stats_));
  EXPECT_EQ(out.size(), 2u);  // p :- q and p :- r
  EXPECT_EQ(stats_.aux_predicates, 0u);
}

TEST_F(CompilerFixture, ForallOverDisjunctionNeedsAux) {
  // The union-style body: (forall z in Z)(z in X ; z in Y).
  PredicateId p =
      *program_.signature().Declare("p", {Sort::kSet, Sort::kSet,
                                          Sort::kSet});
  TermId xs = V("Xs", Sort::kSet);
  TermId ys = V("Ys", Sort::kSet);
  TermId zs = V("Zs", Sort::kSet);
  TermId z = V("Z");
  GeneralClause gc;
  gc.head = Literal{p, {xs, ys, zs}, true};
  std::vector<FormulaPtr> alts;
  alts.push_back(Formula::Atomic(Literal{kPredIn, {z, xs}, true}));
  alts.push_back(Formula::Atomic(Literal{kPredIn, {z, ys}, true}));
  gc.body = Formula::Forall(z, zs, Formula::Or(std::move(alts)));
  std::vector<Clause> out;
  ASSERT_OK(CompileGeneralClause(&store_, &program_.signature(), gc,
                                 &out, &stats_));
  // aux(z, Xs, Ys) :- z in Xs.  aux(z, Xs, Ys) :- z in Ys.
  // p(...) :- (forall z in Zs) aux(z, Xs, Ys).
  EXPECT_EQ(stats_.aux_predicates, 1u);
  EXPECT_EQ(out.size(), 3u);
  // Every emitted clause is valid LPS.
  for (const Clause& c : out) {
    EXPECT_TRUE(
        ValidateClause(store_, program_.signature(), c,
                       LanguageMode::kLPS)
            .ok());
  }
}

TEST_F(CompilerFixture, ExistsBecomesMembershipConjunct) {
  PredicateId p = *program_.signature().Declare("p", {Sort::kSet});
  PredicateId q = *program_.signature().Declare("q", {Sort::kAtom});
  TermId xs = V("Xs", Sort::kSet);
  TermId e = V("E");
  GeneralClause gc;
  gc.head = Literal{p, {xs}, true};
  gc.body =
      Formula::Exists(e, xs, Formula::Atomic(Literal{q, {e}, true}));
  std::vector<Clause> out;
  ASSERT_OK(CompileGeneralClause(&store_, &program_.signature(), gc,
                                 &out, &stats_));
  ASSERT_EQ(out.size(), 2u);
  // Main clause has "E in Xs" conjunct and no quantifier prefix.
  const Clause& main = out.back();
  EXPECT_TRUE(main.quantifiers.empty());
  bool has_membership = false;
  for (const Literal& l : main.body) {
    if (l.pred == kPredIn) has_membership = true;
  }
  EXPECT_TRUE(has_membership);
}

// Example 9's observation, executably: the generated union definition is
// bulkier than the hand-written one but semantically identical.
TEST(CompilerSemanticsTest, CompiledUnionMatchesBuiltin) {
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    s({1}). s({2}). s({1, 2}). s({1, 3}). s({}). s({1, 2, 3}).
    myunion(X, Y, Z) :- s(X), s(Y), s(Z),
        (forall A in X : A in Z),
        (forall B in Y : B in Z),
        (forall C in Z : (C in X ; C in Y)).
  )"));
  ASSERT_OK(engine.Evaluate());
  // Compare against the builtin on every domain triple.
  auto sets = engine.Query("s(X)");
  ASSERT_TRUE(sets.ok());
  BuiltinOptions bopts;
  size_t agreements = 0;
  for (const Tuple& xs : *sets) {
    for (const Tuple& ys : *sets) {
      for (const Tuple& zs : *sets) {
        std::vector<TermId> args = {xs[0], ys[0], zs[0]};
        auto expected =
            CheckBuiltin(engine.store(), kPredUnion, args, bopts);
        ASSERT_TRUE(expected.ok());
        PredicateId my = engine.signature()->Lookup("myunion", 3);
        bool actual = engine.database()->Contains(my, args);
        EXPECT_EQ(actual, *expected)
            << engine.TupleToString(args);
        ++agreements;
      }
    }
  }
  EXPECT_EQ(agreements, 216u);  // 6^3 triples, all checked
}

TEST(CompilerSemanticsTest, MixedQuantifierDisjunctionExists) {
  // A body exercising every Theorem 6 case at once.
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    s({1, 2}). s({7}). s({}).
    odd(1). odd(7). odd(3).
    interesting(X) :- s(X),
        (exists E in X : odd(E), forall A in X : A <= 7)
        ; X = {}.
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("interesting({1,2})"));
  EXPECT_TRUE(*engine.HoldsText("interesting({7})"));
  EXPECT_TRUE(*engine.HoldsText("interesting({})"));
}

TEST(CompilerSemanticsTest, AuxPredicatesInvisibleToQueries) {
  // Theorem 6's statement: consequences over the ORIGINAL language L
  // coincide. Aux predicates live in the extension L*.
  Engine engine(LanguageMode::kLPS);
  ASSERT_OK(engine.LoadString(R"(
    q(a). r(b).
    p(X) :- q(X) ; r(X).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("p(a)"));
  EXPECT_TRUE(*engine.HoldsText("p(b)"));
  EXPECT_FALSE(*engine.HoldsText("p(c)"));
}

TEST(CompilerSemanticsTest, GroupingBodyFunnelsThroughSingleAux) {
  // A disjunctive grouping body must produce ONE group per key, not one
  // per disjunct.
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    likes(ann, tea). dislikes(ann, noise). likes(bob, beer).
    feelings(P, <T>) :- likes(P, T) ; dislikes(P, T).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("feelings(ann, {tea, noise})"));
  EXPECT_TRUE(*engine.HoldsText("feelings(bob, {beer})"));
  EXPECT_FALSE(*engine.HoldsText("feelings(ann, {tea})"));
}

}  // namespace
}  // namespace lps
