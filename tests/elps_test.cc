// Section 5: ELPS - arbitrarily nested finite sets with untyped
// variables. Theorem 9 asserts the LPS results carry over; these tests
// exercise nesting through the whole pipeline.
#include <gtest/gtest.h>

#include "eval/engine.h"
#include "lang/validate.h"

namespace lps {
namespace {

#define ASSERT_OK(expr)                        \
  do {                                         \
    ::lps::Status _st = (expr);                \
    ASSERT_TRUE(_st.ok()) << _st.ToString();   \
  } while (0)

TEST(ElpsTest, NestedSetFactsAndQueries) {
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    family({{a, b}, {c}}).
    family({{}}).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("family({{c}, {a, b}})"));
  EXPECT_TRUE(*engine.HoldsText("family({{}})"));
  EXPECT_FALSE(*engine.HoldsText("family({})"));
}

TEST(ElpsTest, MembershipBetweenSets) {
  // In ELPS, membership may hold between a set and a set of sets.
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    family({{a, b}, {c}}).
    block(B) :- family(F), B in F.
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("block({a, b})"));
  EXPECT_TRUE(*engine.HoldsText("block({c})"));
  EXPECT_FALSE(*engine.HoldsText("block({a})"));
}

TEST(ElpsTest, QuantifiersOverSetsOfSets) {
  // (forall B in F)(c in B): every block contains c.
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    family({{c, a}, {c}}).
    family({{c}, {d}}).
    allc(F) :- family(F), forall B in F : c in B.
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("allc({{c, a}, {c}})"));
  EXPECT_FALSE(*engine.HoldsText("allc({{c}, {d}})"));
}

TEST(ElpsTest, FlattenViaNestedQuantifiers) {
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    family({{a, b}, {c}}).
    elem(E) :- family(F), B in F, E in B.
  )"));
  ASSERT_OK(engine.Evaluate());
  auto rows = engine.Query("elem(X)");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);  // a, b, c
}

TEST(ElpsTest, UnionOfSetsOfSets) {
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    f({{a}}). g({{b}, {c}}).
    both(Z) :- f(X), g(Y), union(X, Y, Z).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("both({{a}, {b}, {c}})"));
}

TEST(ElpsTest, SconsBuildsNestedStructure) {
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    f({a, b}).
    wrap(Z) :- f(X), scons(X, {}, Z).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("wrap({{a, b}})"));
}

TEST(ElpsTest, DeepNestingDepthThree) {
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    deep({{{x}}}).
    layer1(A) :- deep(D), A in D.
    layer2(B) :- layer1(A), B in A.
    layer3(C) :- layer2(B), C in B.
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("layer1({{x}})"));
  EXPECT_TRUE(*engine.HoldsText("layer2({x})"));
  EXPECT_TRUE(*engine.HoldsText("layer3(x)"));
}

TEST(ElpsTest, MixedDepthElements) {
  // {a, {a}} is a legal ELPS set mixing an atom with a set.
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    m({a, {a}}).
    has_atom(X) :- m(X), a in X.
    has_set(X) :- m(X), {a} in X.
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("has_atom({a, {a}})"));
  EXPECT_TRUE(*engine.HoldsText("has_set({a, {a}})"));
}

TEST(ElpsTest, Theorem9MinimalModelStillWorks) {
  // Monotone nested program converges to a least model; re-evaluation
  // is stable (lfp reached).
  Engine engine(LanguageMode::kELPS);
  ASSERT_OK(engine.LoadString(R"(
    seed({{a}}).
    grow(X) :- seed(X).
    grow(Z) :- grow(X), scons({b}, X, Z).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("grow({{a}, {b}})"));
  std::string model = engine.database()->ToString(*engine.signature());
  ASSERT_OK(engine.Evaluate());
  EXPECT_EQ(engine.database()->ToString(*engine.signature()), model);
}

TEST(ElpsTest, GroupingCollectsSetsNatively) {
  Engine engine(LanguageMode::kLDL);
  ASSERT_OK(engine.LoadString(R"(
    pred rel(atom, set).
    rel(k1, {a}). rel(k1, {b, c}). rel(k2, {}).
    collected(K, <S>) :- rel(K, S).
  )"));
  ASSERT_OK(engine.Evaluate());
  EXPECT_TRUE(*engine.HoldsText("collected(k1, {{a}, {b, c}})"));
  EXPECT_TRUE(*engine.HoldsText("collected(k2, {{}})"));
}

TEST(ElpsTest, LpsValidationCatchesWhatElpsAllows) {
  const char* kNested = "p({{a}}).";
  Engine lps(LanguageMode::kLPS);
  EXPECT_FALSE(lps.LoadString(kNested).ok());
  Engine elps(LanguageMode::kELPS);
  ASSERT_OK(elps.LoadString(kNested));
}

}  // namespace
}  // namespace lps
