// Tests for the lexer, parser, and sort inference.
#include "parse/parser.h"

#include <gtest/gtest.h>

#include "parse/sort_infer.h"

namespace lps {
namespace {

TEST(LexerTest, TokenizesPunctuationAndKeywords) {
  auto toks = Tokenize("p(X, {a, 1}) :- X in Ys, not q ; r. ?- z.");
  ASSERT_TRUE(toks.ok());
  std::vector<TokenKind> kinds;
  for (const Token& t : *toks) kinds.push_back(t.kind);
  EXPECT_EQ(kinds.front(), TokenKind::kIdent);
  EXPECT_EQ(kinds.back(), TokenKind::kEof);
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kQuery),
            kinds.end());
  EXPECT_NE(std::find(kinds.begin(), kinds.end(), TokenKind::kKwNot),
            kinds.end());
}

TEST(LexerTest, CommentsAndNegativeNumbers) {
  auto toks = Tokenize("p(-3). % comment\n// another\nq(4).");
  ASSERT_TRUE(toks.ok());
  int ints = 0;
  for (const Token& t : *toks) {
    if (t.kind == TokenKind::kInteger) {
      ++ints;
      EXPECT_TRUE(t.int_value == -3 || t.int_value == 4);
    }
  }
  EXPECT_EQ(ints, 2);
}

TEST(LexerTest, TracksLineNumbers) {
  auto toks = Tokenize("p.\nq.\nr.");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].line, 1);
  EXPECT_EQ((*toks)[2].line, 2);
  EXPECT_EQ((*toks)[4].line, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("p(a) @ q.").ok());
  EXPECT_FALSE(Tokenize("p :- q!").ok());
}

TEST(ParserTest, ParsesFactsRulesQueriesDecls) {
  auto unit = ParseSource(R"(
    pred parts(atom, set).
    parts(p1, {a, b}).
    big(X) :- parts(X, Ys), card(Ys, N), 2 <= N.
    ?- big(p1).
  )");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  EXPECT_EQ(unit->decls.size(), 1u);
  EXPECT_EQ(unit->clauses.size(), 2u);
  EXPECT_EQ(unit->queries.size(), 1u);
  EXPECT_EQ(unit->decls[0].sorts,
            (std::vector<Sort>{Sort::kAtom, Sort::kSet}));
}

TEST(ParserTest, QuantifierChains) {
  auto unit = ParseSource(
      "disj(X, Y) :- forall A in X, forall B in Y : A != B.");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const PFormula& body = *unit->clauses[0].body;
  ASSERT_EQ(body.kind, FormulaKind::kForall);
  ASSERT_EQ(body.children[0].kind, FormulaKind::kForall);
  EXPECT_EQ(body.children[0].children[0].kind, FormulaKind::kAtomic);
  EXPECT_EQ(body.var, "A");
  EXPECT_EQ(body.children[0].var, "B");
}

TEST(ParserTest, QuantifierScopeIsOneUnit) {
  // forall applies to the next unit only; the trailing conjunct is
  // outside its scope.
  auto unit = ParseSource("p(X) :- forall A in X : q(A), r(X).");
  ASSERT_TRUE(unit.ok());
  const PFormula& body = *unit->clauses[0].body;
  ASSERT_EQ(body.kind, FormulaKind::kAnd);
  EXPECT_EQ(body.children[0].kind, FormulaKind::kForall);
  EXPECT_EQ(body.children[1].kind, FormulaKind::kAtomic);
}

TEST(ParserTest, DisjunctionPrecedence) {
  // "a, b ; c" parses as (a, b) ; c - comma binds tighter.
  auto unit = ParseSource("p :- q, r ; s.");
  ASSERT_TRUE(unit.ok());
  const PFormula& body = *unit->clauses[0].body;
  ASSERT_EQ(body.kind, FormulaKind::kOr);
  EXPECT_EQ(body.children[0].kind, FormulaKind::kAnd);
  EXPECT_EQ(body.children[1].kind, FormulaKind::kAtomic);
}

TEST(ParserTest, GroupingHeads) {
  auto unit = ParseSource("g(X, <Y>) :- q(X, Y).");
  ASSERT_TRUE(unit.ok());
  const PClause& c = unit->clauses[0];
  ASSERT_EQ(c.args.size(), 2u);
  EXPECT_FALSE(c.args[0].grouped);
  EXPECT_TRUE(c.args[1].grouped);
  EXPECT_EQ(c.args[1].term.name, "Y");
}

TEST(ParserTest, ComparisonsAndExists) {
  auto unit = ParseSource(
      "p(X) :- exists A in X : (A < 3 ; A = 7), X != {}.");
  ASSERT_TRUE(unit.ok()) << unit.status().ToString();
  const PFormula& body = *unit->clauses[0].body;
  ASSERT_EQ(body.kind, FormulaKind::kAnd);
  EXPECT_EQ(body.children[0].kind, FormulaKind::kExists);
}

TEST(ParserTest, FunctionTermsAndNestedSets) {
  auto unit = ParseSource("p(f(a, g(X)), {{a}, {}}).");
  ASSERT_TRUE(unit.ok());
  const PClause& c = unit->clauses[0];
  EXPECT_EQ(c.args[0].term.kind, PTerm::Kind::kFunc);
  EXPECT_EQ(c.args[0].term.args[1].kind, PTerm::Kind::kFunc);
  EXPECT_EQ(c.args[1].term.kind, PTerm::Kind::kSet);
  EXPECT_EQ(c.args[1].term.args.size(), 2u);
}

TEST(ParserTest, ErrorsCarryLineInfo) {
  auto bad = ParseSource("p(a) :- q(b)\nr(c).");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line"), std::string::npos);
  EXPECT_FALSE(ParseSource("p() .").ok());
  EXPECT_FALSE(ParseSource(":- q.").ok());
  EXPECT_FALSE(ParseSource("p :- forall x in X : q(x).").ok())
      << "lower-case quantified variable should fail (x is a constant)";
}

class SortInferTest : public ::testing::Test {
 protected:
  // Infers sorts for the single clause of `src`.
  VarSorts Infer(const std::string& src,
                 LanguageMode mode = LanguageMode::kLPS) {
    auto unit = ParseSource(src);
    EXPECT_TRUE(unit.ok()) << unit.status().ToString();
    SymbolTable syms;
    Signature sig(&syms);
    auto sorts = InferClauseSorts(unit->clauses[0], mode, sig);
    EXPECT_TRUE(sorts.ok()) << sorts.status().ToString();
    return sorts.ok() ? *sorts : VarSorts{};
  }
};

TEST_F(SortInferTest, QuantifierMakesRangeSetAndVarAtom) {
  VarSorts s = Infer("p(X) :- forall A in X : q(A).");
  EXPECT_EQ(s["X"], Sort::kSet);
  EXPECT_EQ(s["A"], Sort::kAtom);
}

TEST_F(SortInferTest, BuiltinPositionsConstrain) {
  VarSorts s = Infer("p(X, Y, Z, N) :- union(X, Y, Z), card(Z, N).");
  EXPECT_EQ(s["X"], Sort::kSet);
  EXPECT_EQ(s["Y"], Sort::kSet);
  EXPECT_EQ(s["Z"], Sort::kSet);
  EXPECT_EQ(s["N"], Sort::kAtom);
}

TEST_F(SortInferTest, MembershipSplitsSorts) {
  VarSorts s = Infer("p(A, X) :- A in X.");
  EXPECT_EQ(s["A"], Sort::kAtom);
  EXPECT_EQ(s["X"], Sort::kSet);
}

TEST_F(SortInferTest, EqualityPropagates) {
  VarSorts s = Infer("p(X) :- X = Y, Y = {a}.");
  EXPECT_EQ(s["X"], Sort::kSet);
  EXPECT_EQ(s["Y"], Sort::kSet);
}

TEST_F(SortInferTest, DefaultsAtomInLps) {
  VarSorts s = Infer("p(X, Y) :- q(X, Y).");
  EXPECT_EQ(s["X"], Sort::kAtom);
  EXPECT_EQ(s["Y"], Sort::kAtom);
}

TEST_F(SortInferTest, ConflictIsErrorInLps) {
  auto unit = ParseSource("p(X) :- X in Y, forall A in X : q(A).");
  ASSERT_TRUE(unit.ok());
  SymbolTable syms;
  Signature sig(&syms);
  // X is a member (atom in LPS) and a quantifier range (set): LPS error.
  auto lps = InferClauseSorts(unit->clauses[0], LanguageMode::kLPS, sig);
  EXPECT_FALSE(lps.ok());
  // ELPS: membership left side is untyped (sets can contain sets), so X
  // is simply a set.
  auto elps =
      InferClauseSorts(unit->clauses[0], LanguageMode::kELPS, sig);
  ASSERT_TRUE(elps.ok());
  EXPECT_EQ((*elps)["X"], Sort::kSet);
}

TEST_F(SortInferTest, HardConflictWidensToAnyInElps) {
  // Arithmetic forces atom in every mode; the quantifier range forces
  // set: ELPS widens to kAny, LPS rejects.
  auto unit =
      ParseSource("p(X) :- add(X, 1, K), forall A in X : q(A).");
  ASSERT_TRUE(unit.ok());
  SymbolTable syms;
  Signature sig(&syms);
  EXPECT_FALSE(
      InferClauseSorts(unit->clauses[0], LanguageMode::kLPS, sig).ok());
  auto elps =
      InferClauseSorts(unit->clauses[0], LanguageMode::kELPS, sig);
  ASSERT_TRUE(elps.ok());
  EXPECT_EQ((*elps)["X"], Sort::kAny);
}

TEST_F(SortInferTest, DeclaredPredicatesDriveInference) {
  auto unit = ParseSource(R"(
    pred parts(atom, set).
    q(P, Y) :- parts(P, Y).
  )");
  ASSERT_TRUE(unit.ok());
  SymbolTable syms;
  Signature sig(&syms);
  ASSERT_TRUE(sig.Declare("parts", {Sort::kAtom, Sort::kSet}).ok());
  auto sorts =
      InferClauseSorts(unit->clauses[0], LanguageMode::kLPS, sig);
  ASSERT_TRUE(sorts.ok());
  EXPECT_EQ((*sorts)["P"], Sort::kAtom);
  EXPECT_EQ((*sorts)["Y"], Sort::kSet);
}

TEST(LowerTest, InfersDeclarationsFromUsage) {
  auto unit = ParseSource(R"(
    r(p1, {a}).
    s(X, E) :- r(X, Y), E in Y.
  )");
  ASSERT_TRUE(unit.ok());
  TermStore store;
  Signature sig(&store.symbols());
  auto lowered =
      LowerParsedUnit(*unit, LanguageMode::kLPS, &store, &sig);
  ASSERT_TRUE(lowered.ok()) << lowered.status().ToString();
  PredicateId r = sig.Lookup("r", 2);
  ASSERT_NE(r, kInvalidPredicate);
  EXPECT_EQ(sig.info(r).arg_sorts[0], Sort::kAtom);
  EXPECT_EQ(sig.info(r).arg_sorts[1], Sort::kSet);
  EXPECT_EQ(lowered->facts.size(), 1u);
  EXPECT_EQ(lowered->clauses.size(), 1u);
}

TEST(LowerTest, UnknownQueryPredicateFails) {
  auto unit = ParseSource("?- nosuch(a).");
  ASSERT_TRUE(unit.ok());
  TermStore store;
  Signature sig(&store.symbols());
  auto lowered =
      LowerParsedUnit(*unit, LanguageMode::kLPS, &store, &sig);
  EXPECT_FALSE(lowered.ok());
}

TEST(LowerTest, NonGroundBodylessHeadIsClauseNotFact) {
  auto unit = ParseSource("p(X).");
  ASSERT_TRUE(unit.ok());
  TermStore store;
  Signature sig(&store.symbols());
  auto lowered =
      LowerParsedUnit(*unit, LanguageMode::kLPS, &store, &sig);
  ASSERT_TRUE(lowered.ok());
  EXPECT_EQ(lowered->facts.size(), 0u);
  EXPECT_EQ(lowered->clauses.size(), 1u);
}

}  // namespace
}  // namespace lps
