// E5a, Lemma 4: the ground Horn body of an LPS clause has
// |X1| * ... * |Xn| * k atoms. Expected shape: time and body size grow
// as cardinality^quantifiers - the exponential blow-up that makes
// native quantifier evaluation (division) worthwhile.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

// Builds p(X1..Xn) :- (forall e1 in X1)...(forall en in Xn) q(e1..en).
struct GroundSetup {
  GroundSetup(int quantifiers, int cardinality) : program(&store) {
    std::vector<Sort> psorts(quantifiers, Sort::kSet);
    PredicateId p = program.signature().Declare("p", psorts).value();
    std::vector<Sort> qsorts(quantifiers, Sort::kAtom);
    PredicateId q = program.signature().Declare("q", qsorts).value();

    clause.head.pred = p;
    Literal body_lit{q, {}, true};
    for (int i = 0; i < quantifiers; ++i) {
      TermId range = store.MakeVariable("R" + std::to_string(i),
                                        Sort::kSet);
      TermId var =
          store.MakeVariable("e" + std::to_string(i), Sort::kAtom);
      clause.head.args.push_back(range);
      clause.quantifiers.push_back(Quantifier{var, range});
      body_lit.args.push_back(var);
      theta.Bind(range, MakeIntRangeSet(&store, cardinality));
    }
    clause.body.push_back(std::move(body_lit));
  }

  TermStore store;
  Program program;
  Clause clause;
  Substitution theta;
};

void BM_GroundClause(benchmark::State& state) {
  GroundSetup setup(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)));
  GroundOptions opts;
  opts.max_body_atoms = 10000000;
  size_t body_atoms = 0;
  for (auto _ : state) {
    auto ground = GroundClause(&setup.store, setup.clause, setup.theta,
                               opts);
    if (!ground.ok()) state.SkipWithError(ground.status().ToString().c_str());
    body_atoms = ground->body.size();
    benchmark::DoNotOptimize(*ground);
  }
  state.counters["body_atoms"] = static_cast<double>(body_atoms);
}
BENCHMARK(BM_GroundClause)
    ->Args({1, 4})
    ->Args({1, 64})
    ->Args({1, 1024})
    ->Args({2, 4})
    ->Args({2, 32})
    ->Args({2, 128})
    ->Args({3, 4})
    ->Args({3, 16})
    ->Args({3, 64})
    ->Args({4, 8})
    ->Args({4, 16});

void BM_GroundBodySizeOnly(benchmark::State& state) {
  // Counting without materialising: the analytical Lemma 4 number.
  GroundSetup setup(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)));
  for (auto _ : state) {
    auto n = GroundBodySize(&setup.store, setup.clause, setup.theta);
    if (!n.ok()) state.SkipWithError(n.status().ToString().c_str());
    benchmark::DoNotOptimize(*n);
  }
}
BENCHMARK(BM_GroundBodySizeOnly)->Args({3, 64})->Args({4, 16});

void BM_GroundProgramOverDomain(benchmark::State& state) {
  // Whole-program grounding over an active domain of `sets` sets: the
  // preprocessing cost a ground-then-solve pipeline (Theorem 5's proof
  // route) pays before any evaluation.
  int sets = static_cast<int>(state.range(0));
  int cardinality = static_cast<int>(state.range(1));
  TermStore store;
  Program program(&store);
  PredicateId p =
      program.signature().Declare("p", {Sort::kSet}).value();
  PredicateId q =
      program.signature().Declare("q", {Sort::kAtom}).value();
  TermId range = store.MakeVariable("R", Sort::kSet);
  TermId var = store.MakeVariable("e", Sort::kAtom);
  Clause clause;
  clause.head = Literal{p, {range}, true};
  clause.quantifiers.push_back(Quantifier{var, range});
  clause.body.push_back(Literal{q, {var}, true});
  program.AddClause(clause);

  Rng rng(3);
  std::vector<TermId> atom_domain, set_domain;
  for (int i = 0; i < cardinality * 4; ++i) {
    atom_domain.push_back(store.MakeInt(i));
  }
  for (int i = 0; i < sets; ++i) {
    set_domain.push_back(
        MakeRandomSet(&store, cardinality, cardinality * 4, &rng));
  }
  GroundOptions opts;
  opts.max_instances = 10000000;
  opts.max_body_atoms = 10000000;
  for (auto _ : state) {
    auto ground =
        GroundProgramOverDomain(program, atom_domain, set_domain, opts);
    if (!ground.ok()) {
      state.SkipWithError(ground.status().ToString().c_str());
    }
    benchmark::DoNotOptimize(*ground);
  }
  state.SetItemsProcessed(state.iterations() * sets);
}
BENCHMARK(BM_GroundProgramOverDomain)
    ->Args({16, 4})
    ->Args({64, 4})
    ->Args({256, 4})
    ->Args({64, 16})
    ->Args({64, 64});

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
