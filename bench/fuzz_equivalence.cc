// Differential fuzzing of the three evaluation strategies: for seeded
// random flat-Horn programs (workloads.h), the answers of
//   (1) demand execution (magic-set rewrite, or its recorded fallback),
//   (2) full bottom-up fixpoint + scan, and
//   (3) top-down SLD resolution (non-recursive seeds only - the
//       top-down solver is documented incomplete for cyclic recursion)
// must be identical. Any divergence prints a self-contained repro and
// appends the seed + program to --fail-log for CI artifact upload.
//
// Each clean seed then runs a randomized churn schedule: batches of
// fact inserts and retracts committed through MutationBatch on an
// Options::incremental session (eval/incremental.h). After every
// batch the incrementally maintained database must equal - canonical
// string for canonical string - a from-scratch fixpoint of the same
// mutated program, and after the last batch the demand-executed goal
// answers must match the full fixpoint's.
//
// Clean seeds also run a body-permutation sweep: PermuteRuleBodies
// shuffles the literal order of every rule body, and each permuted
// program must reach the identical canonical model under the full
// fixpoint and the identical goal answers under demand execution.
// Join order is an implementation choice the cost-based planner makes
// per statistics snapshot; the model must not depend on it. --perm-only
// restricts a run to this sweep (plus the base magic/full agreement),
// skipping top-down and churn, so large seed counts stay fast.
//
//   fuzz_equivalence [--seeds N] [--start S] [--perms K] [--perm-only]
//                    [--fail-log PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "workloads.h"

namespace {

using lps::bench::FuzzProgram;
using lps::bench::PermuteRuleBodies;
using lps::bench::RandomFlatHornProgram;

std::vector<std::string> Render(lps::Session* session,
                                const std::vector<lps::Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const lps::Tuple& t : rows) {
    out.push_back(session->TupleToString(t));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct Answers {
  bool ok = false;
  std::string error;
  std::vector<std::string> rows;
};

Answers RunMode(const FuzzProgram& fuzz, const char* mode) {
  Answers out;
  lps::Options options;
  options.demand = (std::strcmp(mode, "magic") == 0);
  lps::Session session(lps::LanguageMode::kLDL, options);
  lps::Status st = session.Load(fuzz.source);
  if (st.ok()) st = session.Compile();
  if (!st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto q = session.Prepare(fuzz.goal);
  if (!q.ok()) {
    out.error = q.status().ToString();
    return out;
  }
  lps::Result<lps::AnswerCursor> cursor =
      lps::Status::Internal("unset");
  if (std::strcmp(mode, "magic") == 0) {
    cursor = q->ExecuteDemand();
  } else if (std::strcmp(mode, "full") == 0) {
    st = session.Evaluate();
    if (!st.ok()) {
      out.error = st.ToString();
      return out;
    }
    cursor = q->Execute();
  } else {  // topdown: reads program facts, never evaluates
    cursor = q->SolveTopDown();
  }
  if (!cursor.ok()) {
    out.error = cursor.status().ToString();
    return out;
  }
  auto rows = cursor->ToVector();
  if (!rows.ok()) {
    out.error = rows.status().ToString();
    return out;
  }
  out.ok = true;
  out.rows = Render(&session, *rows);
  return out;
}

// Randomized insert/retract churn against an incremental session,
// checked batch-by-batch against a from-scratch fixpoint. Ops are
// exchanged as fact *text* so the two sessions (distinct TermStores)
// stay comparable; inserts recombine argument texts seen in the
// initial fact set position-by-position, so sorts always fit. Returns
// an error description, or "" when every batch converged identically.
std::string ChurnCheck(const FuzzProgram& fuzz, uint64_t seed) {
  lps::Options inc_opts;
  inc_opts.incremental = true;
  lps::Session inc(lps::LanguageMode::kLDL, inc_opts);
  if (!inc.Load(fuzz.source).ok() || !inc.Evaluate().ok()) {
    return "";  // base program does not evaluate: nothing to churn
  }

  // Per-(predicate, position) pools of argument texts.
  struct Pool {
    std::string name;
    std::vector<std::vector<std::string>> args;  // [pos] -> texts
  };
  std::vector<Pool> pools;
  {
    const lps::Signature& sig = inc.program()->signature();
    std::vector<lps::PredicateId> order;
    for (const lps::Literal& f : inc.program()->facts()) {
      size_t i = 0;
      while (i < order.size() && order[i] != f.pred) ++i;
      if (i == order.size()) {
        order.push_back(f.pred);
        pools.push_back({sig.Name(f.pred), {}});
        pools.back().args.resize(f.args.size());
      }
      for (size_t a = 0; a < f.args.size(); ++a) {
        pools[i].args[a].push_back(
            lps::TermToString(*inc.store(), f.args[a]));
      }
    }
  }
  if (pools.empty()) return "";

  lps::bench::Rng rng(seed ^ 0x9E3779B97F4A7C15ULL);
  std::vector<std::pair<bool, std::string>> log;  // cumulative (insert?)
  for (int batch = 0; batch < 3; ++batch) {
    lps::MutationBatch b = inc.Mutate();
    size_t staged = 0;
    const size_t ops = 1 + rng.Below(4);
    for (size_t op = 0; op < ops; ++op) {
      const auto& facts = inc.program()->facts();
      if (!facts.empty() && rng.Below(2) == 0) {  // retract a live fact
        const lps::Literal& f = facts[rng.Below(facts.size())];
        std::string text = lps::LiteralToString(
            *inc.store(), inc.program()->signature(), f);
        if (!b.RetractText(text).ok()) continue;
        log.push_back({false, std::move(text)});
      } else {  // insert a recombination of seen arguments
        const Pool& pool = pools[rng.Below(pools.size())];
        std::string text = pool.name + "(";
        for (size_t a = 0; a < pool.args.size(); ++a) {
          if (a > 0) text += ", ";
          text += pool.args[a][rng.Below(pool.args[a].size())];
        }
        text += ")";
        if (!b.AddText(text).ok()) continue;
        log.push_back({true, std::move(text)});
      }
      ++staged;
    }
    if (staged == 0) {
      b.Abort();
      continue;
    }
    lps::Status st = b.Commit();
    if (!st.ok()) return "churn commit: " + st.ToString();

    // From-scratch referee: same source, same cumulative op log
    // (applied before the first Evaluate, i.e. the deferred path),
    // full fixpoint.
    lps::Session ref(lps::LanguageMode::kLDL);
    st = ref.Load(fuzz.source);
    if (st.ok()) st = ref.Compile();
    if (st.ok()) {
      lps::MutationBatch rb = ref.Mutate();
      for (const auto& [insert, text] : log) {
        st = insert ? rb.AddText(text) : rb.RetractText(text);
        if (!st.ok()) break;
      }
      if (st.ok()) st = rb.Commit();
    }
    if (st.ok()) st = ref.Evaluate();
    if (!st.ok()) return "churn referee: " + st.ToString();

    std::string got = inc.database()->ToCanonicalString(
        inc.program()->signature());
    std::string want = ref.database()->ToCanonicalString(
        ref.program()->signature());
    if (got != want) {
      return "incremental db != from-scratch fixpoint after churn "
             "batch " +
             std::to_string(batch) + " (" + std::to_string(log.size()) +
             " ops)";
    }

    if (batch == 2) {  // demand answers over the churned program
      auto qi = inc.Prepare(fuzz.goal);
      auto qr = ref.Prepare(fuzz.goal);
      if (!qi.ok() || !qr.ok()) return "churn prepare failed";
      auto ci = qi->ExecuteDemand();
      auto cr = qr->Execute();
      if (!ci.ok() || !cr.ok()) {
        return "churn goal: demand=[" + ci.status().ToString() +
               "] full=[" + cr.status().ToString() + "]";
      }
      auto ri = ci->ToVector();
      auto rr = cr->ToVector();
      if (!ri.ok() || !rr.ok()) return "churn cursor failed";
      if (Render(&inc, *ri) != Render(&ref, *rr)) {
        return "churned demand answers != full fixpoint answers";
      }
    }
  }
  return "";
}

// Full fixpoint of `source`, rendered as the database's canonical
// string (sorted, TermStore-independent). On evaluation error returns
// "" with the message in *error.
std::string CanonicalModel(const std::string& source, std::string* error) {
  lps::Session session(lps::LanguageMode::kLDL);
  lps::Status st = session.Load(source);
  if (st.ok()) st = session.Evaluate();
  if (!st.ok()) {
    *error = st.ToString();
    return "";
  }
  return session.database()->ToCanonicalString(
      session.program()->signature());
}

void Dump(const FuzzProgram& fuzz, uint64_t seed) {
  std::fprintf(stderr, "---- seed %llu (%s) ----\n",
               static_cast<unsigned long long>(seed),
               fuzz.recursive ? "recursive" : "nonrecursive");
  std::fprintf(stderr, "%s?- %s.\n", fuzz.source.c_str(),
               fuzz.goal.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 50;
  uint64_t start = 0;
  uint64_t perms = 3;
  bool perm_only = false;
  const char* fail_log = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--perms") == 0 && i + 1 < argc) {
      perms = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--perm-only") == 0) {
      perm_only = true;
    } else if (std::strcmp(argv[i], "--fail-log") == 0 && i + 1 < argc) {
      fail_log = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--start S] [--perms K] "
                   "[--perm-only] [--fail-log PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  size_t failures = 0;
  size_t topdown_compared = 0;
  size_t churned = 0;
  size_t permutations_checked = 0;
  for (uint64_t seed = start; seed < start + seeds; ++seed) {
    FuzzProgram fuzz = RandomFlatHornProgram(seed);

    Answers magic = RunMode(fuzz, "magic");
    Answers full = RunMode(fuzz, "full");

    auto fail = [&](const std::string& what) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      Dump(fuzz, seed);
      if (fail_log != nullptr) {
        std::ofstream log(fail_log, std::ios::app);
        log << "seed " << seed << ": " << what << "\n"
            << fuzz.source << "?- " << fuzz.goal << ".\n\n";
      }
    };

    if (!magic.ok || !full.ok) {
      fail("evaluation error: magic=[" + magic.error + "] full=[" +
           full.error + "]");
      continue;
    }
    if (magic.rows != full.rows) {
      fail("magic (" + std::to_string(magic.rows.size()) +
           " answers) != full fixpoint (" +
           std::to_string(full.rows.size()) + " answers)");
      continue;
    }
    // Body-permutation sweep: shuffle every rule body and demand the
    // identical canonical model and identical demand answers. This is
    // the planner's soundness contract - the cost-based join order is
    // itself one such permutation.
    if (perms > 0) {
      std::string base_err;
      std::string base_db = CanonicalModel(fuzz.source, &base_err);
      if (!base_err.empty()) {
        fail("base fixpoint for permutation sweep: " + base_err);
        continue;
      }
      bool perm_failed = false;
      for (uint64_t p = 1; p <= perms; ++p) {
        FuzzProgram perm = fuzz;
        perm.source =
            PermuteRuleBodies(fuzz.source, seed * 1315423911ull + p);
        std::string perr;
        std::string pdb = CanonicalModel(perm.source, &perr);
        if (!perr.empty()) {
          fail("permutation " + std::to_string(p) +
               " fixpoint error: " + perr);
          perm_failed = true;
          break;
        }
        if (pdb != base_db) {
          fail("permutation " + std::to_string(p) +
               " canonical model differs from source order");
          perm_failed = true;
          break;
        }
        Answers pmagic = RunMode(perm, "magic");
        if (!pmagic.ok) {
          fail("permutation " + std::to_string(p) +
               " demand error: " + pmagic.error);
          perm_failed = true;
          break;
        }
        if (pmagic.rows != full.rows) {
          fail("permutation " + std::to_string(p) +
               " demand answers differ from source-order fixpoint");
          perm_failed = true;
          break;
        }
        ++permutations_checked;
      }
      if (perm_failed) continue;
    }
    if (perm_only) continue;

    // Top-down comparison only where the solver is complete: no cyclic
    // recursion, no grouping clauses (rejected by TopDownSolver).
    if (!fuzz.recursive && !fuzz.has_grouping) {
      Answers topdown = RunMode(fuzz, "topdown");
      if (!topdown.ok) {
        fail("top-down error: " + topdown.error);
        continue;
      }
      ++topdown_compared;
      if (topdown.rows != full.rows) {
        fail("top-down (" + std::to_string(topdown.rows.size()) +
             " answers) != full fixpoint (" +
             std::to_string(full.rows.size()) + " answers)");
        continue;
      }
    }

    // Clean seed: drive a churn schedule through the incremental
    // maintainer and re-check convergence after every batch.
    std::string churn = ChurnCheck(fuzz, seed);
    if (!churn.empty()) {
      fail(churn);
      continue;
    }
    ++churned;
  }

  std::printf(
      "fuzz_equivalence: %llu seeds [%llu, %llu), %zu with top-down "
      "comparison, %zu with churn schedules, %zu body permutations, "
      "%zu failures\n",
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(start),
      static_cast<unsigned long long>(start + seeds), topdown_compared,
      churned, permutations_checked, failures);
  return failures == 0 ? 0 : 1;
}
