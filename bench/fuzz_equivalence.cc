// Differential fuzzing of the three evaluation strategies: for seeded
// random flat-Horn programs (workloads.h), the answers of
//   (1) demand execution (magic-set rewrite, or its recorded fallback),
//   (2) full bottom-up fixpoint + scan, and
//   (3) top-down SLD resolution (non-recursive seeds only - the
//       top-down solver is documented incomplete for cyclic recursion)
// must be identical. Any divergence prints a self-contained repro and
// appends the seed + program to --fail-log for CI artifact upload.
//
//   fuzz_equivalence [--seeds N] [--start S] [--fail-log PATH]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "workloads.h"

namespace {

using lps::bench::FuzzProgram;
using lps::bench::RandomFlatHornProgram;

std::vector<std::string> Render(lps::Session* session,
                                const std::vector<lps::Tuple>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const lps::Tuple& t : rows) {
    out.push_back(session->TupleToString(t));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

struct Answers {
  bool ok = false;
  std::string error;
  std::vector<std::string> rows;
};

Answers RunMode(const FuzzProgram& fuzz, const char* mode) {
  Answers out;
  lps::Options options;
  options.demand = (std::strcmp(mode, "magic") == 0);
  lps::Session session(lps::LanguageMode::kLDL, options);
  lps::Status st = session.Load(fuzz.source);
  if (st.ok()) st = session.Compile();
  if (!st.ok()) {
    out.error = st.ToString();
    return out;
  }
  auto q = session.Prepare(fuzz.goal);
  if (!q.ok()) {
    out.error = q.status().ToString();
    return out;
  }
  lps::Result<lps::AnswerCursor> cursor =
      lps::Status::Internal("unset");
  if (std::strcmp(mode, "magic") == 0) {
    cursor = q->ExecuteDemand();
  } else if (std::strcmp(mode, "full") == 0) {
    st = session.Evaluate();
    if (!st.ok()) {
      out.error = st.ToString();
      return out;
    }
    cursor = q->Execute();
  } else {  // topdown: reads program facts, never evaluates
    cursor = q->SolveTopDown();
  }
  if (!cursor.ok()) {
    out.error = cursor.status().ToString();
    return out;
  }
  auto rows = cursor->ToVector();
  if (!rows.ok()) {
    out.error = rows.status().ToString();
    return out;
  }
  out.ok = true;
  out.rows = Render(&session, *rows);
  return out;
}

void Dump(const FuzzProgram& fuzz, uint64_t seed) {
  std::fprintf(stderr, "---- seed %llu (%s) ----\n",
               static_cast<unsigned long long>(seed),
               fuzz.recursive ? "recursive" : "nonrecursive");
  std::fprintf(stderr, "%s?- %s.\n", fuzz.source.c_str(),
               fuzz.goal.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seeds = 50;
  uint64_t start = 0;
  const char* fail_log = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--start") == 0 && i + 1 < argc) {
      start = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--fail-log") == 0 && i + 1 < argc) {
      fail_log = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--start S] [--fail-log PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  size_t failures = 0;
  size_t topdown_compared = 0;
  for (uint64_t seed = start; seed < start + seeds; ++seed) {
    FuzzProgram fuzz = RandomFlatHornProgram(seed);

    Answers magic = RunMode(fuzz, "magic");
    Answers full = RunMode(fuzz, "full");

    auto fail = [&](const std::string& what) {
      ++failures;
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      Dump(fuzz, seed);
      if (fail_log != nullptr) {
        std::ofstream log(fail_log, std::ios::app);
        log << "seed " << seed << ": " << what << "\n"
            << fuzz.source << "?- " << fuzz.goal << ".\n\n";
      }
    };

    if (!magic.ok || !full.ok) {
      fail("evaluation error: magic=[" + magic.error + "] full=[" +
           full.error + "]");
      continue;
    }
    if (magic.rows != full.rows) {
      fail("magic (" + std::to_string(magic.rows.size()) +
           " answers) != full fixpoint (" +
           std::to_string(full.rows.size()) + " answers)");
      continue;
    }
    // Top-down comparison only where the solver is complete: no cyclic
    // recursion, no grouping clauses (rejected by TopDownSolver).
    if (!fuzz.recursive && !fuzz.has_grouping) {
      Answers topdown = RunMode(fuzz, "topdown");
      if (!topdown.ok) {
        fail("top-down error: " + topdown.error);
        continue;
      }
      ++topdown_compared;
      if (topdown.rows != full.rows) {
        fail("top-down (" + std::to_string(topdown.rows.size()) +
             " answers) != full fixpoint (" +
             std::to_string(full.rows.size()) + " answers)");
        continue;
      }
    }
  }

  std::printf(
      "fuzz_equivalence: %llu seeds [%llu, %llu), %zu with top-down "
      "comparison, %zu failures\n",
      static_cast<unsigned long long>(seeds),
      static_cast<unsigned long long>(start),
      static_cast<unsigned long long>(start + seeds), topdown_compared,
      failures);
  return failures == 0 ? 0 : 1;
}
