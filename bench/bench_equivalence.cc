// E10, Theorem 10: the same query in the three equivalent languages -
//   (a) ELPS with restricted universal quantifiers (native),
//   (b) Horn over L+scons  (EliminateQuantifiers, scons recursion),
//   (c) Horn over L+union  (EliminateQuantifiers, union recursion).
// Expected shape: all three agree; the quantifier-free encodings pay a
// per-subset structural recursion (they materialise every subset of
// each witness set), so their cost explodes with set cardinality while
// the native evaluation stays polynomial - the practical argument for
// LPS's native quantifier.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

std::string AllqWorkload(int sets, int card) {
  std::string source = SetFamily(sets, card, 2 * card, 21);
  for (int i = 0; i < 2 * card; ++i) {
    source += "q(" + std::to_string(i) + ").\n";
  }
  source += "allq(X) :- s(X), forall E in X : q(E).\n";
  return source;
}

void BM_NativeQuantifier(benchmark::State& state) {
  std::string source = AllqWorkload(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    tuples = MustEvaluate(engine.get()).tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_NativeQuantifier)
    ->Args({4, 3})
    ->Args({8, 3})
    ->Args({16, 3})
    ->Args({8, 5})
    ->Args({8, 7})
    ->Args({64, 6})
    ->Args({256, 6});

void RunEliminated(benchmark::State& state, SetPrimitive prim) {
  std::string source = AllqWorkload(static_cast<int>(state.range(0)),
                                    static_cast<int>(state.range(1)));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    auto rewritten = EliminateQuantifiers(*engine->program(), prim);
    if (!rewritten.ok()) {
      state.SkipWithError(rewritten.status().ToString().c_str());
      return;
    }
    Database db(engine->store(), &rewritten->signature());
    state.ResumeTiming();
    EvalOptions opts;
    opts.max_tuples = 20000000;
    auto stats = EvaluateProgram(*rewritten, &db, opts);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    tuples = stats->tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}

void BM_HornPlusScons(benchmark::State& state) {
  RunEliminated(state, SetPrimitive::kScons);
}
BENCHMARK(BM_HornPlusScons)
    ->Args({4, 3})
    ->Args({8, 3})
    ->Args({16, 3})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

void BM_HornPlusUnion(benchmark::State& state) {
  RunEliminated(state, SetPrimitive::kUnion);
}
BENCHMARK(BM_HornPlusUnion)
    ->Args({4, 3})
    ->Args({8, 3})
    ->Args({16, 3})
    ->Args({8, 4})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
