// E13: set-unifier enumeration cost (Section 3.2's "arbitrary
// unifiers"). Expected shape: the number of unifiers of
// {V1..Vk} = {c1..cm} grows like the number of surjections, so time is
// super-exponential in k; unification against ground sets of equal
// cardinality is the cheap permutation case.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

void BM_UnifyVarsAgainstConsts(benchmark::State& state) {
  int nvars = static_cast<int>(state.range(0));
  int nconsts = static_cast<int>(state.range(1));
  TermStore store;
  std::vector<TermId> lhs_elems, rhs_elems;
  for (int i = 0; i < nvars; ++i) {
    lhs_elems.push_back(
        store.MakeVariable("V" + std::to_string(i), Sort::kAtom));
  }
  for (int i = 0; i < nconsts; ++i) {
    rhs_elems.push_back(store.MakeConstant("c" + std::to_string(i)));
  }
  TermId lhs = store.MakeSet(lhs_elems);
  TermId rhs = store.MakeSet(rhs_elems);
  size_t unifiers = 0;
  for (auto _ : state) {
    UnifyOptions opts;
    Unifier u(&store, opts);
    std::vector<Substitution> out;
    Status st = u.Enumerate(lhs, rhs, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    unifiers = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["unifiers"] = static_cast<double>(unifiers);
}
BENCHMARK(BM_UnifyVarsAgainstConsts)
    ->Args({1, 1})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 3})
    ->Args({4, 4})
    ->Args({5, 4});

void BM_UnifyGroundSets(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  TermId a = MakeIntRangeSet(&store, n);
  TermId b = MakeIntRangeSet(&store, n);
  for (auto _ : state) {
    Unifier u(&store);
    std::vector<Substitution> out;
    Status st = u.Enumerate(a, b, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_UnifyGroundSets)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_UnifyPartialOverlap(benchmark::State& state) {
  // {V, c0..ck-1} vs {c0..ck}: one variable, k shared constants.
  int k = static_cast<int>(state.range(0));
  TermStore store;
  std::vector<TermId> lhs_elems, rhs_elems;
  lhs_elems.push_back(store.MakeVariable("V", Sort::kAtom));
  for (int i = 0; i < k; ++i) {
    TermId c = store.MakeConstant("c" + std::to_string(i));
    lhs_elems.push_back(c);
    rhs_elems.push_back(c);
  }
  rhs_elems.push_back(store.MakeConstant("c" + std::to_string(k)));
  TermId lhs = store.MakeSet(lhs_elems);
  TermId rhs = store.MakeSet(rhs_elems);
  for (auto _ : state) {
    Unifier u(&store);
    std::vector<Substitution> out;
    Status st = u.Enumerate(lhs, rhs, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_UnifyPartialOverlap)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_UnifyFunctionTerms(benchmark::State& state) {
  // Deep non-set structure: the classical linear case for contrast.
  int depth = static_cast<int>(state.range(0));
  TermStore store;
  TermId x = store.MakeVariable("X", Sort::kAtom);
  TermId t1 = x;
  TermId t2 = store.MakeConstant("a");
  for (int i = 0; i < depth; ++i) {
    t1 = store.MakeFunction("f", {t1});
    t2 = store.MakeFunction("f", {t2});
  }
  for (auto _ : state) {
    Unifier u(&store);
    std::vector<Substitution> out;
    Status st = u.Enumerate(t1, t2, &out);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_UnifyFunctionTerms)->Arg(4)->Arg(64)->Arg(512);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
