// E14: top-down (goal-directed) vs bottom-up (full materialisation) on
// point queries. Expected shape: for a selective goal over a large EDB
// the tabled SLD solver touches only the relevant slice, while
// bottom-up pays for the whole model; for full-output queries the
// bottom-up engine wins (no resolution overhead per tuple).
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

std::string JoinWorkload(int n) {
  // Non-recursive three-hop join over a chain (the top-down solver cuts
  // cyclic goals, so recursion is the bottom-up engine's job).
  return ChainGraph(n) + R"(
    hop2(X, Z) :- edge(X, Y), edge(Y, Z).
    hop3(X, W) :- hop2(X, Z), edge(Z, W).
  )";
}

void BM_PointQueryTopDown(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string source = JoinWorkload(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("hop3(n0, W)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_PointQueryTopDown)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_PointQueryBottomUp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string source = JoinWorkload(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    MustEvaluate(engine.get());
    auto rows = engine->Query("hop3(n0, W)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_PointQueryBottomUp)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_FullOutputTopDown(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string source = JoinWorkload(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("hop3(X, W)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_FullOutputTopDown)->Arg(64)->Arg(256)->Arg(1024);

void BM_FullOutputBottomUp(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string source = JoinWorkload(n);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    MustEvaluate(engine.get());
    auto rows = engine->Query("hop3(X, W)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_FullOutputBottomUp)->Arg(64)->Arg(256)->Arg(1024);

// Set-heavy goal: subset checks against a family of sets, where the
// top-down engine expands quantifiers over ground sets on demand.
void BM_SubsetGoalTopDown(benchmark::State& state) {
  int sets = static_cast<int>(state.range(0));
  std::string source = SetFamily(sets, 8, 16, 41) + R"(
    covered(X) :- s(X), forall E in X : good(E).
    good(0). good(1). good(2). good(3).
    good(4). good(5). good(6). good(7).
  )";
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("covered(X)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_SubsetGoalTopDown)->Arg(16)->Arg(64)->Arg(256);

void BM_SubsetGoalBottomUp(benchmark::State& state) {
  int sets = static_cast<int>(state.range(0));
  std::string source = SetFamily(sets, 8, 16, 41) + R"(
    covered(X) :- s(X), forall E in X : good(E).
    good(0). good(1). good(2). good(3).
    good(4). good(5). good(6). good(7).
  )";
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    MustEvaluate(engine.get());
    auto rows = engine->Query("covered(X)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_SubsetGoalBottomUp)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
