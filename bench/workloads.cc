#include "workloads.h"

#include <cstdio>
#include <cstdlib>

namespace lps::bench {

std::string ChainGraph(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
           ").\n";
  }
  return out;
}

std::string RandomGraph(int nodes, int edges, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < edges; ++i) {
    out += "edge(n" + std::to_string(rng.Below(nodes)) + ", n" +
           std::to_string(rng.Below(nodes)) + ").\n";
  }
  return out;
}

std::string TransitiveClosureRules() {
  return R"(
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )";
}

std::string SetFamily(int count, int cardinality, int universe,
                      uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < count; ++i) {
    out += "s({";
    for (int j = 0; j < cardinality; ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(rng.Below(universe));
    }
    out += "}).\n";
  }
  return out;
}

std::string BomCatalog(int objects, int cardinality, int universe,
                       uint64_t seed) {
  Rng rng(seed);
  std::string out = "pred parts(atom, set).\npred cost(atom, atom).\n";
  for (int p = 0; p < universe; ++p) {
    out += "cost(part" + std::to_string(p) + ", " +
           std::to_string(1 + rng.Below(100)) + ").\n";
  }
  for (int o = 0; o < objects; ++o) {
    out += "parts(obj" + std::to_string(o) + ", {";
    for (int j = 0; j < cardinality; ++j) {
      if (j > 0) out += ", ";
      out += "part" + std::to_string(rng.Below(universe));
    }
    out += "}).\n";
  }
  return out;
}

TermId MakeIntRangeSet(TermStore* store, int n) {
  std::vector<TermId> elems;
  elems.reserve(n);
  for (int i = 0; i < n; ++i) elems.push_back(store->MakeInt(i));
  return store->MakeSet(std::move(elems));
}

TermId MakeRandomSet(TermStore* store, int cardinality, int universe,
                     Rng* rng) {
  std::vector<TermId> elems;
  elems.reserve(cardinality);
  for (int i = 0; i < cardinality; ++i) {
    elems.push_back(
        store->MakeInt(static_cast<int64_t>(rng->Below(universe))));
  }
  return store->MakeSet(std::move(elems));
}

std::unique_ptr<Session> MustLoad(const std::string& source,
                                  LanguageMode mode) {
  auto session = std::make_unique<Session>(mode);
  Status st = session->Load(source);
  if (st.ok()) st = session->Compile();
  if (!st.ok()) {
    std::fprintf(stderr, "bench workload failed to load: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return session;
}

EvalStats MustEvaluate(Session* session, Options options) {
  Status st = session->Evaluate(options);
  if (!st.ok()) {
    std::fprintf(stderr, "bench evaluation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return session->eval_stats();
}

PreparedQuery MustPrepare(Session* session, const std::string& goal) {
  auto q = session->Prepare(goal);
  if (!q.ok()) {
    std::fprintf(stderr, "bench goal failed to prepare: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return *std::move(q);
}

}  // namespace lps::bench
