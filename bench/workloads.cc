#include "workloads.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace lps::bench {

std::string ChainGraph(int n) {
  std::string out;
  for (int i = 0; i < n; ++i) {
    out += "edge(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
           ").\n";
  }
  return out;
}

std::string RandomGraph(int nodes, int edges, uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < edges; ++i) {
    out += "edge(n" + std::to_string(rng.Below(nodes)) + ", n" +
           std::to_string(rng.Below(nodes)) + ").\n";
  }
  return out;
}

std::string TransitiveClosureRules() {
  return R"(
    path(X, Y) :- edge(X, Y).
    path(X, Z) :- path(X, Y), edge(Y, Z).
  )";
}

std::string ShardedTcSource(int shards, int nodes, int edges,
                            uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int s = 0; s < shards; ++s) {
    const std::string e = "edge" + std::to_string(s);
    const std::string p = "path" + std::to_string(s);
    const std::string node = "s" + std::to_string(s) + "_n";
    // A chain first, so every shard constant occurs in some fact -
    // churn over existing node names then never interns a new term
    // (the precondition for FreezeIncremental sharing the store).
    for (int i = 0; i + 1 < nodes; ++i) {
      out += e + "(" + node + std::to_string(i) + ", " + node +
             std::to_string(i + 1) + ").\n";
    }
    for (int i = nodes - 1; i < edges; ++i) {
      out += e + "(" + node + std::to_string(rng.Below(nodes)) + ", " +
             node + std::to_string(rng.Below(nodes)) + ").\n";
    }
    out += p + "(X, Y) :- " + e + "(X, Y).\n";
    out += p + "(X, Z) :- " + p + "(X, Y), " + e + "(Y, Z).\n";
  }
  return out;
}

std::string SocialFollows(size_t users) {
  constexpr size_t kClusterSize = 64;
  std::string out;
  out.reserve(users * 3 * 24);
  Rng rng(0x2545f4914f6cdd1dULL);
  auto edge = [&out](size_t a, size_t b) {
    out += "follows(u" + std::to_string(a) + ", u" + std::to_string(b) +
           ").\n";
  };
  for (size_t i = 0; i < users; ++i) {
    const size_t cluster = i / kClusterSize;
    const size_t base = cluster * kClusterSize;
    const size_t span = std::min(kClusterSize, users - base);
    auto member = [base, span](size_t k) { return base + k % span; };
    edge(i, member(i - base + 1));  // ring
    edge(i, member(i - base + 3));  // skip ring
    if (span > 4) edge(i, member(rng.Below(span)));  // extra
  }
  return out;
}

std::string SetFamily(int count, int cardinality, int universe,
                      uint64_t seed) {
  Rng rng(seed);
  std::string out;
  for (int i = 0; i < count; ++i) {
    out += "s({";
    for (int j = 0; j < cardinality; ++j) {
      if (j > 0) out += ", ";
      out += std::to_string(rng.Below(universe));
    }
    out += "}).\n";
  }
  return out;
}

std::string BomCatalog(int objects, int cardinality, int universe,
                       uint64_t seed) {
  Rng rng(seed);
  std::string out = "pred parts(atom, set).\npred cost(atom, atom).\n";
  for (int p = 0; p < universe; ++p) {
    out += "cost(part" + std::to_string(p) + ", " +
           std::to_string(1 + rng.Below(100)) + ").\n";
  }
  for (int o = 0; o < objects; ++o) {
    out += "parts(obj" + std::to_string(o) + ", {";
    for (int j = 0; j < cardinality; ++j) {
      if (j > 0) out += ", ";
      out += "part" + std::to_string(rng.Below(universe));
    }
    out += "}).\n";
  }
  return out;
}

std::string FollowerGraph(int users, int edges, uint64_t seed) {
  Rng rng(seed);
  std::string out = "pred follows(atom, atom).\n";
  for (int i = 0; i < edges; ++i) {
    uint64_t f = rng.Below(users);
    uint64_t u = rng.Below(users);
    out += "follows(u" + std::to_string(f) + ", u" + std::to_string(u) +
           ").\n";
  }
  return out;
}

std::string FollowerSetRules() {
  return "followers(U, <F>) :- follows(F, U).\n";
}

std::string FollowerOfFollowerRules() {
  return "fof(U, <F2>) :- follows(F1, U), follows(F2, F1).\n";
}

std::string BomAssembly(int objects, int parts_per, int universe,
                        uint64_t seed) {
  Rng rng(seed);
  std::string out = "pred sub(atom, atom).\npred part_of(atom, atom).\n";
  // A DAG: each object uses up to two strictly-later subassemblies, so
  // `uses` closure explodes combinatorially but stays acyclic.
  for (int o = 0; o + 1 < objects; ++o) {
    int fanout = 1 + static_cast<int>(rng.Below(2));
    for (int k = 0; k < fanout; ++k) {
      int s = o + 1 + static_cast<int>(rng.Below(objects - o - 1));
      out += "sub(obj" + std::to_string(o) + ", obj" + std::to_string(s) +
             ").\n";
    }
  }
  for (int o = 0; o < objects; ++o) {
    for (int k = 0; k < parts_per; ++k) {
      out += "part_of(part" + std::to_string(rng.Below(universe)) +
             ", obj" + std::to_string(o) + ").\n";
    }
  }
  return out;
}

std::string BomSubpartSetRules() {
  return R"(
    uses(O, S) :- sub(O, S).
    uses(O, S2) :- uses(O, S), sub(S, S2).
    haspart(O, P) :- part_of(P, O).
    haspart(O, P) :- uses(O, S), part_of(P, S).
    partset(O, <P>) :- haspart(O, P).
  )";
}

TermId MakeIntRangeSet(TermStore* store, int n) {
  std::vector<TermId> elems;
  elems.reserve(n);
  for (int i = 0; i < n; ++i) elems.push_back(store->MakeInt(i));
  return store->MakeSet(std::move(elems));
}

TermId MakeRandomSet(TermStore* store, int cardinality, int universe,
                     Rng* rng) {
  std::vector<TermId> elems;
  elems.reserve(cardinality);
  for (int i = 0; i < cardinality; ++i) {
    elems.push_back(
        store->MakeInt(static_cast<int64_t>(rng->Below(universe))));
  }
  return store->MakeSet(std::move(elems));
}

std::string PermuteRuleBodies(const std::string& source, uint64_t seed) {
  if (seed == 0) return source;
  Rng rng(seed);
  std::string out;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string::npos) eol = source.size();
    std::string line = source.substr(pos, eol - pos);
    pos = eol + 1;
    size_t arrow = line.find(" :- ");
    size_t dot = line.rfind('.');
    if (arrow == std::string::npos || dot == std::string::npos ||
        dot < arrow) {
      out += line;
      out += '\n';
      continue;
    }
    // Split "lit, lit, ..." at top-level commas only: commas inside
    // parenthesized argument lists or braced set literals stay put.
    std::string body = line.substr(arrow + 4, dot - arrow - 4);
    std::vector<std::string> lits;
    std::string cur;
    int depth = 0;
    for (size_t i = 0; i < body.size(); ++i) {
      char c = body[i];
      if (c == '(' || c == '{') ++depth;
      if (c == ')' || c == '}') --depth;
      if (c == ',' && depth == 0) {
        lits.push_back(cur);
        cur.clear();
        while (i + 1 < body.size() && body[i + 1] == ' ') ++i;
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) lits.push_back(cur);
    for (size_t i = lits.size(); i > 1; --i) {  // Fisher-Yates
      std::swap(lits[i - 1], lits[rng.Below(i)]);
    }
    out += line.substr(0, arrow + 4);
    for (size_t i = 0; i < lits.size(); ++i) {
      if (i > 0) out += ", ";
      out += lits[i];
    }
    out += line.substr(dot);
    out += '\n';
  }
  return out;
}

FuzzProgram RandomFlatHornProgram(uint64_t seed) {
  Rng rng(seed * 0x9e3779b97f4a7c15ull + 1);
  const bool allow_recursion = (seed % 2) == 1;
  FuzzProgram out;

  const int nconst = 4 + static_cast<int>(rng.Below(4));
  auto constant = [&]() {
    return "c" + std::to_string(rng.Below(nconst));
  };

  // EDB: two binary relations and one unary one.
  struct EdbSpec {
    const char* name;
    int arity;
    int facts;
  };
  const EdbSpec edb[] = {
      {"e0", 2, 5 + static_cast<int>(rng.Below(8))},
      {"e1", 2, 4 + static_cast<int>(rng.Below(6))},
      {"u0", 1, 2 + static_cast<int>(rng.Below(3))},
  };
  for (const EdbSpec& spec : edb) {
    for (int f = 0; f < spec.facts; ++f) {
      out.source += spec.name;
      out.source += '(';
      for (int a = 0; a < spec.arity; ++a) {
        if (a > 0) out.source += ", ";
        out.source += constant();
      }
      out.source += ").\n";
    }
  }

  // IDB: p0..p{k-1}, arity 1 or 2, bodies over EDB + earlier IDB
  // predicates (same-or-earlier when recursion is allowed).
  const int npreds = 2 + static_cast<int>(rng.Below(3));
  std::vector<int> arity(npreds);
  for (int i = 0; i < npreds; ++i) {
    arity[i] = 1 + static_cast<int>(rng.Below(2));
  }
  for (int i = 0; i < npreds; ++i) {
    const int nrules = 1 + static_cast<int>(rng.Below(2));
    for (int r = 0; r < nrules; ++r) {
      std::vector<std::string> body;
      std::vector<std::string> bound_vars;
      auto var = [&]() { return "V" + std::to_string(rng.Below(4)); };
      const int nlits = 1 + static_cast<int>(rng.Below(3));
      for (int l = 0; l < nlits; ++l) {
        std::string name;
        int lit_arity;
        // Half the literals scan the EDB; the rest call the IDB.
        if (i == 0 || rng.Below(2) == 0) {
          const EdbSpec& spec = edb[rng.Below(3)];
          name = spec.name;
          lit_arity = spec.arity;
        } else {
          int j = static_cast<int>(rng.Below(allow_recursion ? i + 1 : i));
          if (j == i) out.recursive = true;
          name = "p" + std::to_string(j);
          lit_arity = arity[j];
        }
        std::string lit = name + "(";
        for (int a = 0; a < lit_arity; ++a) {
          if (a > 0) lit += ", ";
          if (rng.Below(4) == 0) {
            lit += constant();
          } else {
            std::string v = var();
            bound_vars.push_back(v);
            lit += v;
          }
        }
        lit += ")";
        body.push_back(std::move(lit));
      }
      // Occasionally a negated EDB check over already-bound variables
      // (safe: every variable occurs in a positive literal).
      if (!bound_vars.empty() && rng.Below(4) == 0) {
        const EdbSpec& spec = edb[rng.Below(3)];
        std::string lit = "not ";
        lit += spec.name;
        lit += '(';
        for (int a = 0; a < spec.arity; ++a) {
          if (a > 0) lit += ", ";
          if (rng.Below(3) == 0) {
            lit += constant();
          } else {
            lit += bound_vars[rng.Below(bound_vars.size())];
          }
        }
        lit += ')';
        body.push_back(std::move(lit));
      }
      // Head arguments come from bound variables (or constants), so
      // every generated rule is safe and enumeration-free.
      out.source += "p" + std::to_string(i) + "(";
      for (int a = 0; a < arity[i]; ++a) {
        if (a > 0) out.source += ", ";
        if (bound_vars.empty() || rng.Below(5) == 0) {
          out.source += constant();
        } else {
          out.source += bound_vars[rng.Below(bound_vars.size())];
        }
      }
      out.source += ") :- ";
      for (size_t l = 0; l < body.size(); ++l) {
        if (l > 0) out.source += ", ";
        out.source += body[l];
      }
      out.source += ".\n";
    }
  }

  // Optional grouping layer (Definition 14): one set-materializing
  // rule over a binary IDB predicate. A third of the seeds carry it,
  // so the differential harness continuously checks demand (magic)
  // against the full fixpoint on set-valued answers.
  std::vector<int> binary_preds;
  for (int i = 0; i < npreds; ++i) {
    if (arity[i] == 2) binary_preds.push_back(i);
  }
  if (!binary_preds.empty() && rng.Below(3) == 0) {
    int j = binary_preds[rng.Below(binary_preds.size())];
    out.source += "g0(K, <V>) :- p" + std::to_string(j) + "(K, V).\n";
    out.has_grouping = true;
  }

  // The goal targets a random IDB predicate with a random binding
  // pattern (all-free patterns exercise the demand fallback). Half the
  // grouping seeds aim at the grouping head instead - sometimes with a
  // bound key, which is the demand-over-grouping fast path, sometimes
  // all-free, which is its fallback.
  if (out.has_grouping && rng.Below(2) == 0) {
    out.goal = "g0(";
    out.goal += rng.Below(2) == 0 ? constant() : "X0";
    out.goal += ", X1)";
    return out;
  }
  const int gp = static_cast<int>(rng.Below(npreds));
  out.goal = "p" + std::to_string(gp) + "(";
  for (int a = 0; a < arity[gp]; ++a) {
    if (a > 0) out.goal += ", ";
    if (rng.Below(2) == 0) {
      out.goal += constant();
    } else {
      out.goal += "X" + std::to_string(a);
    }
  }
  out.goal += ")";
  return out;
}

std::unique_ptr<Session> MustLoad(const std::string& source,
                                  LanguageMode mode) {
  auto session = std::make_unique<Session>(mode);
  Status st = session->Load(source);
  if (st.ok()) st = session->Compile();
  if (!st.ok()) {
    std::fprintf(stderr, "bench workload failed to load: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return session;
}

EvalStats MustEvaluate(Session* session, Options options) {
  Status st = session->Evaluate(options);
  if (!st.ok()) {
    std::fprintf(stderr, "bench evaluation failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return session->eval_stats();
}

PreparedQuery MustPrepare(Session* session, const std::string& goal) {
  auto q = session->Prepare(goal);
  if (!q.ok()) {
    std::fprintf(stderr, "bench goal failed to prepare: %s\n",
                 q.status().ToString().c_str());
    std::abort();
  }
  return *std::move(q);
}

}  // namespace lps::bench
