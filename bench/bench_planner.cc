// Cost-based join ordering vs source order on an adversarial join,
// plus the subsumptive demand cache on repeated point queries.
//
// The needle workload joins hay(X, Y) - `hay` rows, every Y unique -
// against two 32-row relations, written source-order-worst: the rule
// scans hay first and reaches pin(Z, W) before anything binds Z or W,
// so the legacy planner enumerates the 32 x hay cross product before
// the selective link(Y, W) literal prunes it. The cost order starts
// from a 32-row scan and turns both joins into indexed point probes.
// The CI ratio gate (scripts/check_bench.py --min-ratio, wired in
// ci.yml) requires the legacy order to be >= 2x slower - i.e.
// reordering must keep earning its keep. Both orders are checked for
// canonical-model equality here before anything is measured; the
// bench aborts on divergence.
//
// The subsumption pair measures repeated bound-bound point queries
// against a session whose bound-free materialization already covers
// them (answers filtered from the cached result, no fixpoint) vs a
// cold session that re-seeds and re-runs the cached rewrite per query.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>

#include "workloads.h"

namespace lps::bench {
namespace {

// hay(h_i, k_i) for i < hay (all keys distinct), 32 pin(p_j, w_j)
// rows, 32 link(k_?, w_j) rows, and the adversarially ordered rule.
std::string NeedleSource(int hay) {
  std::string out;
  out.reserve(32 * hay);
  for (int i = 0; i < hay; ++i) {
    out += "hay(h" + std::to_string(i) + ", k" + std::to_string(i) +
           ").\n";
  }
  for (int j = 0; j < 32; ++j) {
    out += "pin(p" + std::to_string(j) + ", w" + std::to_string(j) +
           ").\n";
    out += "link(k" + std::to_string((j * 37) % hay) + ", w" +
           std::to_string(j) + ").\n";
  }
  out += "q(X, Z) :- hay(X, Y), pin(Z, W), link(Y, W).\n";
  return out;
}

Options ReorderOptions(bool reorder) {
  Options options;
  options.reorder = reorder;
  return options;
}

// Aborts unless both join orders reach the identical canonical model.
void VerifyNeedleEquivalence(int hay) {
  std::string canonical[2];
  for (int r = 0; r < 2; ++r) {
    auto session = MustLoad(NeedleSource(hay));
    MustEvaluate(session.get(), ReorderOptions(r == 1));
    canonical[r] = session->database()->ToCanonicalString(
        session->program()->signature());
  }
  if (canonical[0] != canonical[1]) {
    std::fprintf(stderr,
                 "bench_planner: reordered model diverges from source "
                 "order on needle/%d\n",
                 hay);
    std::abort();
  }
}

void NeedleJoin(benchmark::State& state, bool reorder) {
  const int hay = static_cast<int>(state.range(0));
  VerifyNeedleEquivalence(hay);
  auto session = MustLoad(NeedleSource(hay));
  for (auto _ : state) {
    session->ResetDatabase();
    MustEvaluate(session.get(), ReorderOptions(reorder));
  }
  const EvalStats& s = session->eval_stats();
  state.counters["tuples_derived"] =
      static_cast<double>(s.tuples_derived);
  state.counters["plan_reorders"] = static_cast<double>(s.plan_reorders);
}

void BM_NeedleJoinLegacyOrder(benchmark::State& state) {
  NeedleJoin(state, false);
}
BENCHMARK(BM_NeedleJoinLegacyOrder)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

void BM_NeedleJoinCostOrder(benchmark::State& state) {
  NeedleJoin(state, true);
}
BENCHMARK(BM_NeedleJoinCostOrder)->Arg(4096)->Arg(16384)
    ->Unit(benchmark::kMillisecond);

// ---- Subsumptive demand cache ----------------------------------------

std::string TcSource(int n) {
  return RandomGraph(n, 2 * n, 99) + TransitiveClosureRules();
}

// Bound-bound point queries cycling over 64 targets. With `warm` the
// session answered path(n0, X) once up front, so every point query is
// subsumed by that materialization; cold sessions re-run the (cached)
// rewrite per fresh target.
void PointQueries(benchmark::State& state, bool warm) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  // The demand cache (rewrites + materialized results) lives on the
  // prepared query, so the warm materialization must run through the
  // same handle the point queries use.
  auto query = MustPrepare(session.get(), "path(n0, Y)");
  if (warm) {
    auto count = query.ExecuteDemand()->Count();
    if (!count.ok()) std::abort();
  }
  int k = 0;
  for (auto _ : state) {
    query.ClearBindings();
    if (!query.BindText("Y", "n" + std::to_string(k % 64)).ok()) {
      std::abort();
    }
    auto cursor = query.ExecuteDemand();
    if (!cursor.ok()) std::abort();
    auto count = cursor->Count();
    if (!count.ok()) std::abort();
    benchmark::DoNotOptimize(*count);
    ++k;
  }
  // Normalized per query (raw hit counts scale with the iteration
  // count the harness picks): 1.0 when every point query was answered
  // from the warm materialization, 0.0 when none were.
  state.counters["subsumption_hits_per_query"] =
      static_cast<double>(session->demand_subsumption_count()) /
      static_cast<double>(state.iterations());
}

void BM_PointQueryCold(benchmark::State& state) {
  PointQueries(state, false);
}
BENCHMARK(BM_PointQueryCold)->Arg(128)->Unit(benchmark::kMicrosecond);

void BM_PointQuerySubsumed(benchmark::State& state) {
  PointQueries(state, true);
}
BENCHMARK(BM_PointQuerySubsumed)->Arg(128)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lps::bench
