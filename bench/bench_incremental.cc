// Incremental maintenance vs full re-evaluation under fact churn.
//
// Each iteration commits one MutationBatch that retracts ~0.5% of the
// churned EDB facts and re-inserts the ~0.5% retracted by the previous
// iteration (steady-state 1% churn), on two recursive workloads:
//
//   * Ancestry - ancestor closure over a forest of random trees,
//     churning parent edges (local topology churn)
//   * BomReach - reachability + part explosion over a BOM assembly
//     DAG, churning part_of annotations (catalog churn under a stable
//     topology)
//
// BM_*ChurnFull commits with Options::incremental off (every commit
// pays a from-scratch fixpoint); BM_*ChurnIncremental turns it on
// (delta semi-naive inserts + DRed retracts, eval/incremental.h). The
// CI gate (scripts/check_bench.py --min-ratio) requires incremental to
// be >= 20x faster on both workloads.
//
// Before measuring, the bench verifies correctness: several churn
// rounds through the incremental path must leave a database whose
// canonical string equals a from-scratch fixpoint of the same mutated
// program - it aborts on divergence, so the speedup can never come
// from wrong answers.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "workloads.h"

namespace lps::bench {
namespace {

// Ancestry closure over a forest of random trees: the closure (and so
// a full re-evaluation) scales with the whole forest, while a
// retracted parent edge can only condemn ancestor pairs routed through
// it - subtree x ancestor chain, a handful of tuples. This is the
// locality incremental maintenance exists to exploit (org charts,
// file-system hierarchies, ownership trees: closures that are huge in
// aggregate and churn locally). The opposite extreme - transitive
// closure of one dense strongly-connected digraph, where retracting
// any edge condemns nearly every closure tuple - makes DRed degenerate
// to a full re-evaluation by construction and is called out as a
// non-goal in DESIGN.md section 16.
constexpr int kForestTrees = 400;
constexpr int kTreeNodes = 25;

std::string AncestrySource() {
  Rng rng(1234);
  std::string out;
  for (int t = 0; t < kForestTrees; ++t) {
    for (int i = 1; i < kTreeNodes; ++i) {
      int p = static_cast<int>(rng.Below(i));  // parent: earlier node
      out += "parent(t" + std::to_string(t) + "n" + std::to_string(i) +
             ", t" + std::to_string(t) + "n" + std::to_string(p) +
             ").\n";
    }
  }
  return out +
         "anc(X, Y) :- parent(X, Y).\n"
         "anc(X, Z) :- anc(X, Y), parent(Y, Z).\n";
}

// BOM reachability: Horn-only (no grouping), so the incremental
// maintainer keeps it instead of falling back. Churn hits the part_of
// annotations - the part catalog turns over fast while the assembly
// topology (and so the expensive `uses` closure) holds still, which is
// the classic view-maintenance deployment shape.
std::string BomReachSource() {
  return BomAssembly(/*objects=*/420, /*parts_per=*/3, /*universe=*/300,
                     /*seed=*/77) +
         "uses(O, S) :- sub(O, S).\n"
         "uses(O, T) :- uses(O, S), sub(S, T).\n"
         "haspart(O, P) :- part_of(P, O).\n"
         "haspart(O, P) :- uses(O, S), part_of(P, S).\n";
}

void MustOk(const Status& st, const char* what) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench_incremental: %s: %s\n", what,
                 st.ToString().c_str());
    std::abort();
  }
}

// The fact texts of `pred` in the session's compiled program.
std::vector<std::string> FactTexts(Session* session,
                                   const std::string& pred) {
  std::vector<std::string> out;
  const Signature& sig = session->program()->signature();
  for (const Literal& f : session->program()->facts()) {
    if (sig.Name(f.pred) == pred) {
      out.push_back(LiteralToString(*session->store(), sig, f));
    }
  }
  return out;
}

// A churn workload: two disjoint chunks of ~0.5% of the `pred` facts.
// Each Step() retracts one chunk and re-inserts the other, so in
// steady state every commit is half retracts, half inserts, and the
// program oscillates between two states. Ops go through the typed
// Add/Retract path - programmatic churn holds interned tuples, not
// fact text to re-parse per commit (the text path is what Load and
// the referee use).
class Churn {
 public:
  Churn(Session* session, const std::string& pred) : session_(session) {
    const Signature& sig = session->program()->signature();
    std::vector<Tuple> edges;
    for (const Literal& f : session->program()->facts()) {
      if (sig.Name(f.pred) == pred) {
        pred_ = f.pred;
        edges.push_back(f.args);
      }
    }
    size_t k = (edges.size() + 199) / 200;  // 0.5% per chunk, 1%/batch
    // Stride the picks across the whole fact list so the churn spreads
    // over the workload instead of clustering at the front.
    size_t stride = edges.size() / (2 * k);
    if (stride == 0) stride = 1;
    for (size_t i = 0; i < k; ++i) a_.push_back(edges[(2 * i) * stride]);
    for (size_t i = 0; i < k; ++i) {
      b_.push_back(edges[(2 * i + 1) * stride]);
    }
    // Pre-retract chunk B so the first Step() has real inserts too.
    MutationBatch batch = session_->Mutate();
    for (const Tuple& e : b_) MustOk(batch.Retract(pred_, e), "stage");
    MustOk(batch.Commit(), "prime commit");
  }

  void Step() {
    const std::vector<Tuple>& out = flip_ ? b_ : a_;
    const std::vector<Tuple>& in = flip_ ? a_ : b_;
    MutationBatch batch = session_->Mutate();
    for (const Tuple& e : in) MustOk(batch.Add(pred_, e), "stage");
    for (const Tuple& e : out) MustOk(batch.Retract(pred_, e), "stage");
    MustOk(batch.Commit(), "churn commit");
    flip_ = !flip_;
  }

  size_t batch_ops() const { return a_.size() + b_.size(); }

 private:
  Session* session_;
  PredicateId pred_ = kInvalidPredicate;
  std::vector<Tuple> a_;
  std::vector<Tuple> b_;
  bool flip_ = false;
};

std::unique_ptr<Session> EvaluatedSession(const std::string& source,
                                          bool incremental) {
  Options options;
  options.incremental = incremental;
  auto session =
      std::make_unique<Session>(LanguageMode::kLPS, options);
  MustOk(session->Load(source), "load");
  MustOk(session->Evaluate(), "evaluate");
  return session;
}

// Divergence check: churn the incremental session a few rounds, then
// compare against a from-scratch fixpoint of its mutated program.
void VerifyChurnConverges(const std::string& source,
                          const std::string& pred) {
  auto inc = EvaluatedSession(source, /*incremental=*/true);
  Churn churn(inc.get(), pred);
  for (int i = 0; i < 3; ++i) churn.Step();
  if (inc->eval_stats().delta_rounds == 0) {
    std::fprintf(stderr,
                 "bench_incremental: incremental path did not run "
                 "(fell back to full re-evaluation?)\n");
    std::abort();
  }

  // Referee: same source, the same net mutations, full fixpoint.
  auto ref = EvaluatedSession(source, /*incremental=*/false);
  {
    const Signature& sig = inc->program()->signature();
    std::vector<std::pair<std::string, std::string>> facts;
    for (const Literal& f : inc->program()->facts()) {
      facts.emplace_back(sig.Name(f.pred),
                         LiteralToString(*inc->store(), sig, f));
    }
    // Rebuild the referee's fact multiset to match: clear by retract
    // of everything it has, then re-add the incremental session's.
    MutationBatch wipe = ref->Mutate();
    for (const std::string& e : FactTexts(ref.get(), pred)) {
      MustOk(wipe.RetractText(e), "referee stage");
    }
    for (const auto& [name, text] : facts) {
      if (name == pred) MustOk(wipe.AddText(text), "referee stage");
    }
    MustOk(wipe.Commit(), "referee commit");
  }
  std::string got =
      inc->database()->ToCanonicalString(inc->program()->signature());
  std::string want =
      ref->database()->ToCanonicalString(ref->program()->signature());
  if (got != want) {
    std::fprintf(stderr,
                 "bench_incremental: incremental database diverged "
                 "from the from-scratch fixpoint on %s churn\n",
                 pred.c_str());
    std::abort();
  }
}

void ChurnLoop(benchmark::State& state, const std::string& source,
               const std::string& pred, bool incremental) {
  auto session = EvaluatedSession(source, incremental);
  Churn churn(session.get(), pred);
  churn.Step();  // settle into the steady-state oscillation
  for (auto _ : state) {
    churn.Step();
  }
  state.counters["batch_ops"] =
      static_cast<double>(churn.batch_ops());
  state.counters["tuples"] =
      static_cast<double>(session->database()->TupleCount());
}

void BM_AncestryChurnFull(benchmark::State& state) {
  ChurnLoop(state, AncestrySource(), "parent", /*incremental=*/false);
}
BENCHMARK(BM_AncestryChurnFull)->Unit(benchmark::kMicrosecond);

void BM_AncestryChurnIncremental(benchmark::State& state) {
  static const bool verified = [] {
    VerifyChurnConverges(AncestrySource(), "parent");
    return true;
  }();
  (void)verified;
  ChurnLoop(state, AncestrySource(), "parent", /*incremental=*/true);
}
BENCHMARK(BM_AncestryChurnIncremental)->Unit(benchmark::kMicrosecond);

void BM_BomReachChurnFull(benchmark::State& state) {
  ChurnLoop(state, BomReachSource(), "part_of", /*incremental=*/false);
}
BENCHMARK(BM_BomReachChurnFull)->Unit(benchmark::kMicrosecond);

void BM_BomReachChurnIncremental(benchmark::State& state) {
  static const bool verified = [] {
    VerifyChurnConverges(BomReachSource(), "part_of");
    return true;
  }();
  (void)verified;
  ChurnLoop(state, BomReachSource(), "part_of", /*incremental=*/true);
}
BENCHMARK(BM_BomReachChurnIncremental)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
