// Storage-engine microbenches: raw Relation insert / dedup / probe
// throughput plus whole-fixpoint heap-allocation accounting on the
// TcRandom workload. The allocation counters are the regression gate
// for the row-arena layout: with per-tuple heap vectors (the pre-arena
// layout, unordered containers of Tuple) TcRandom/128 cost 24.7 heap
// allocations per derived tuple and raw Insert cost 3.0 (measured
// 2026-07 at the PR 2 tip); the flat arena brought those to 11.9 and
// ~0, and CI holds the line at half the old-layout number (see the
// allocs-per-tuple gate over BENCH_storage.json in ci.yml).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "eval/relation.h"
#include "workloads.h"

// ---- Global heap-allocation counter ----------------------------------
//
// Counts every operator new while enabled. Only the workload under
// measurement runs inside the enabled window, so benchmark-library
// bookkeeping does not pollute the numbers.
namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<uint64_t> g_allocs{0};

struct AllocWindow {
  AllocWindow() {
    g_allocs.store(0, std::memory_order_relaxed);
    g_count_allocs.store(true, std::memory_order_relaxed);
  }
  ~AllocWindow() { g_count_allocs.store(false, std::memory_order_relaxed); }
  uint64_t count() const { return g_allocs.load(std::memory_order_relaxed); }
};
}  // namespace

void* operator new(std::size_t n) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(n ? n : 1);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lps::bench {
namespace {

constexpr size_t kArity = 3;

std::vector<Tuple> RandomRows(size_t n, uint64_t seed, uint64_t universe) {
  Rng rng(seed);
  std::vector<Tuple> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Tuple t(kArity);
    for (size_t c = 0; c < kArity; ++c) {
      t[c] = static_cast<TermId>(rng.Below(universe));
    }
    rows.push_back(std::move(t));
  }
  return rows;
}

// Unique-heavy insert stream: the dedup table mostly misses.
void BM_StorageInsert(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = RandomRows(n, 7, 1u << 20);
  uint64_t allocs = 0;
  size_t stored = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Relation rel(kArity);
    state.ResumeTiming();
    AllocWindow window;
    for (const Tuple& t : rows) rel.Insert(t);
    benchmark::DoNotOptimize(rel.size());
    allocs = window.count();
    stored = rel.size();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs"] = static_cast<double>(allocs);
  state.counters["allocs_per_tuple"] =
      static_cast<double>(allocs) / static_cast<double>(stored);
}
BENCHMARK(BM_StorageInsert)->Arg(1024)->Arg(16384)->Arg(131072);

// Duplicate-heavy stream: every insert after the first pass is a dedup
// hit, so this times pure probe + compare work.
void BM_StorageDedup(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = RandomRows(n, 11, 1u << 20);
  uint64_t allocs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Relation rel(kArity);
    for (const Tuple& t : rows) rel.Insert(t);
    state.ResumeTiming();
    AllocWindow window;
    for (const Tuple& t : rows) {
      bool added = rel.Insert(t);
      benchmark::DoNotOptimize(added);
    }
    allocs = window.count();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs"] = static_cast<double>(allocs);
}
BENCHMARK(BM_StorageDedup)->Arg(1024)->Arg(16384)->Arg(131072);

// Indexed point probes over a prebuilt single-column index.
void BM_StorageProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = RandomRows(n, 13, n);  // dense keys: real hits
  Relation rel(kArity);
  for (const Tuple& t : rows) rel.Insert(t);
  rel.EnsureIndex(0b001);
  Tuple key(kArity, 0);
  uint64_t hits = 0;
  uint64_t allocs = 0;
  for (auto _ : state) {
    AllocWindow window;
    for (const Tuple& t : rows) {
      key[0] = t[0];
      hits += rel.Lookup(0b001, key).size();
    }
    allocs = window.count();
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["allocs"] = static_cast<double>(allocs);
}
BENCHMARK(BM_StorageProbe)->Arg(1024)->Arg(16384)->Arg(131072);

// Snapshot probes against a frozen relation (the parallel-phase read
// path): prebuilt index, watermark at full size, reusable out buffer.
void BM_StorageSnapshotProbe(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<Tuple> rows = RandomRows(n, 17, n);
  Relation rel(kArity);
  for (const Tuple& t : rows) rel.Insert(t);
  rel.EnsureIndex(0b001);
  Tuple key(kArity, 0);
  std::vector<uint32_t> out;
  uint64_t hits = 0;
  for (auto _ : state) {
    for (const Tuple& t : rows) {
      key[0] = t[0];
      rel.LookupSnapshot(0b001, key, rel.size(), &out);
      hits += out.size();
    }
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_StorageSnapshotProbe)->Arg(1024)->Arg(16384)->Arg(131072);

// Whole-pipeline allocation accounting: transitive closure over a
// random graph, counting every heap allocation made during Evaluate()
// (parsing and loading excluded). allocs_per_tuple is the headline
// number the arena layout must keep >= 2x below the pre-arena 24.7
// (i.e. at most 12.4, the ci.yml gate).
void BM_TcRandomAllocs(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  std::string source = RandomGraph(n, 2 * n, 99) + TransitiveClosureRules();
  uint64_t allocs = 0;
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MustLoad(source, LanguageMode::kLPS);
    // Force compile outside the window: only fixpoint work is counted.
    Options opts;
    opts.max_tuples = 10000000;
    opts.max_iterations = 1000000;
    state.ResumeTiming();
    AllocWindow window;
    EvalStats stats = MustEvaluate(session.get(), opts);
    allocs = window.count();
    tuples = stats.tuples_derived;
  }
  state.counters["allocs"] = static_cast<double>(allocs);
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["allocs_per_tuple"] =
      static_cast<double>(allocs) / static_cast<double>(tuples);
}
BENCHMARK(BM_TcRandomAllocs)->Arg(64)->Arg(128);

}  // namespace
}  // namespace lps::bench
