// E3, Example 6: bill-of-materials cost rollups. Expected shape: the
// tabled top-down solver is linear in (objects * set cardinality) since
// each sum_costs suffix is computed once; deeper part sets cost
// proportionally more, and shared suffixes across objects hit the
// table.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

const char* kRules = R"(
  sum_costs({}, 0).
  sum_costs(Z, K) :- schoose(Z, P, Rest), cost(P, M),
                     sum_costs(Rest, N), add(M, N, K).
  obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).
)";

void BM_BomTopDownAllObjects(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  int card = static_cast<int>(state.range(1));
  std::string source =
      BomCatalog(objects, card, 4 * card, 31) + kRules;
  size_t answers = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("obj_cost(X, N)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    answers = rows->size();
    benchmark::DoNotOptimize(*rows);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_BomTopDownAllObjects)
    ->Args({8, 4})
    ->Args({32, 4})
    ->Args({128, 4})
    ->Args({32, 8})
    ->Args({32, 16})
    ->Args({32, 32});

void BM_BomTopDownPointQuery(benchmark::State& state) {
  int card = static_cast<int>(state.range(0));
  std::string source = BomCatalog(64, card, 4 * card, 31) + kRules;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("obj_cost(obj0, N)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_BomTopDownPointQuery)->Arg(4)->Arg(8)->Arg(16)->Arg(32);

// Shared suffixes: identical part sets across objects exercise the
// answer table (one sum per distinct set, not per object).
void BM_BomSharedSets(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  std::string source = "pred parts(atom, set).\npred cost(atom, atom).\n";
  for (int p = 0; p < 16; ++p) {
    source += "cost(part" + std::to_string(p) + ", " +
              std::to_string(p + 1) + ").\n";
  }
  for (int o = 0; o < objects; ++o) {
    // Only 4 distinct sets regardless of object count.
    int variant = o % 4;
    source += "parts(obj" + std::to_string(o) + ", {part" +
              std::to_string(variant) + ", part" +
              std::to_string(variant + 4) + ", part" +
              std::to_string(variant + 8) + "}).\n";
  }
  source += kRules;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    auto rows = engine->SolveTopDown("obj_cost(X, N)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_BomSharedSets)->Arg(16)->Arg(64)->Arg(256);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
