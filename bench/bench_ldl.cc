// E11, Theorem 11: native LDL grouping vs the negation-based
// elimination. Expected shape: native grouping is a single grouped scan
// (near-linear in the EDB); the translation quantifies over candidate
// supersets in the active domain, so it degrades rapidly as the
// candidate pool grows - the asymmetry behind the open question after
// Theorem 12.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

// keys departments, each with `members` employees; `extra_sets` junk
// candidate sets to grow the active domain for the translation.
std::string GroupingWorkload(int keys, int members, int extra_sets) {
  std::string out;
  for (int k = 0; k < keys; ++k) {
    std::string group = "{";
    for (int m = 0; m < members; ++m) {
      if (m > 0) group += ", ";
      std::string emp =
          "e" + std::to_string(k) + "_" + std::to_string(m);
      out += "emp(d" + std::to_string(k) + ", " + emp + ").\n";
      group += emp;
    }
    group += "}";
    // The witness set must be active for the translation (DESIGN.md).
    out += "dom(" + group + ").\n";
  }
  Rng rng(13);
  for (int i = 0; i < extra_sets; ++i) {
    out += "dom({junk" + std::to_string(rng.Below(64)) + ", junk" +
           std::to_string(rng.Below(64)) + "}).\n";
  }
  out += "team(D, <E>) :- emp(D, E).\n";
  return out;
}

void BM_NativeGrouping(benchmark::State& state) {
  std::string source = GroupingWorkload(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(1)),
                                        static_cast<int>(state.range(2)));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLDL);
    state.ResumeTiming();
    tuples = MustEvaluate(engine.get()).tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_NativeGrouping)
    ->Args({4, 4, 0})
    ->Args({16, 4, 0})
    ->Args({64, 4, 0})
    ->Args({16, 16, 0})
    ->Args({16, 4, 64})
    ->Args({256, 8, 0});

void BM_GroupingViaNegation(benchmark::State& state) {
  std::string source = GroupingWorkload(static_cast<int>(state.range(0)),
                                        static_cast<int>(state.range(1)),
                                        static_cast<int>(state.range(2)));
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLDL);
    auto translated = EliminateGrouping(*engine->program());
    if (!translated.ok()) {
      state.SkipWithError(translated.status().ToString().c_str());
      return;
    }
    Database db(engine->store(), &translated->signature());
    state.ResumeTiming();
    EvalOptions opts;
    opts.max_tuples = 20000000;
    auto stats = EvaluateProgram(*translated, &db, opts);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    tuples = stats->tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_GroupingViaNegation)
    ->Args({4, 4, 0})
    ->Args({16, 4, 0})
    ->Args({16, 4, 64})
    ->Args({16, 16, 0});

// The reverse direction (union -> grouping) for completeness.
void BM_UnionViaGroupingTranslation(benchmark::State& state) {
  int sets = static_cast<int>(state.range(0));
  std::string source = SetFamily(sets, 6, 24, 17) + "t({}).\n" +
                       "u(Z) :- s(X), s(Y), union(X, Y, Z).\n";
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLDL);
    auto translated = UnionToGrouping(*engine->program());
    if (!translated.ok()) {
      state.SkipWithError(translated.status().ToString().c_str());
      return;
    }
    Database db(engine->store(), &translated->signature());
    state.ResumeTiming();
    auto stats = EvaluateProgram(*translated, &db);
    if (!stats.ok()) {
      state.SkipWithError(stats.status().ToString().c_str());
      return;
    }
    tuples = stats->tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_UnionViaGroupingTranslation)->Arg(4)->Arg(8)->Arg(16);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
