// Concurrent query serving QPS over a frozen snapshot.
//
// BM_ServeThreads/N runs a fixed batch of path(n_i, Y) point queries
// through an N-lane serve::QueryServer against one published snapshot;
// every request takes the demand (magic-set) route into a private
// result database, so the lanes share nothing but the immutable
// snapshot and the batch should scale near-linearly. The CI gate
// (scripts/check_bench.py --min-ratio) requires the 4-lane batch to be
// >= 2x faster than the 1-lane batch, i.e. >= 2x QPS at 4 threads.
//
// Before measuring, the bench verifies byte-identical answers: the
// rendered rows of a 1-lane and a 4-lane server must agree request by
// request, and the answer counts must match the session's own
// sequential ground truth - it aborts on any divergence, so the QPS
// numbers can never come from wrong answers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workloads.h"

namespace lps::bench {
namespace {

constexpr int kNodes = 96;
constexpr int kBatchReps = 4;  // requests per iteration = reps * nodes

std::string TcSource(int n) {
  return RandomGraph(n, 2 * n, 99) + TransitiveClosureRules();
}

std::vector<serve::ServeRequest> PointBatch(size_t query, int nodes,
                                            int reps) {
  std::vector<serve::ServeRequest> batch;
  batch.reserve(static_cast<size_t>(nodes) * reps);
  for (int rep = 0; rep < reps; ++rep) {
    for (int i = 0; i < nodes; ++i) {
      serve::ServeRequest req;
      req.query = query;
      req.params = {{"X", "n" + std::to_string(i)}};
      batch.push_back(std::move(req));
    }
  }
  return batch;
}

size_t MustPrepareServe(serve::QueryServer* server,
                        const std::string& goal) {
  auto id = server->Prepare(goal);
  if (!id.ok()) {
    std::fprintf(stderr, "bench_serving: Prepare failed: %s\n",
                 id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

std::vector<serve::ServeAnswer> MustExecute(
    serve::QueryServer* server,
    const std::vector<serve::ServeRequest>& batch) {
  auto answers = server->ExecuteBatch(batch);
  if (!answers.ok()) {
    std::fprintf(stderr, "bench_serving: batch failed: %s\n",
                 answers.status().ToString().c_str());
    std::abort();
  }
  for (const serve::ServeAnswer& a : *answers) {
    if (!a.status.ok()) {
      std::fprintf(stderr, "bench_serving: request failed: %s\n",
                   a.status.ToString().c_str());
      std::abort();
    }
  }
  return std::move(*answers);
}

// Aborts unless 1-lane and 4-lane servers return byte-identical
// rendered answers for every request, with counts matching the
// session's sequential ground truth.
void VerifyServingEquivalence(Session* session,
                              serve::SnapshotRegistry* registry) {
  serve::ServeOptions seq_opts;
  seq_opts.threads = 1;
  serve::ServeOptions par_opts;
  par_opts.threads = 4;
  serve::QueryServer seq(registry, seq_opts);
  serve::QueryServer par(registry, par_opts);
  std::vector<serve::ServeRequest> batch =
      PointBatch(MustPrepareServe(&seq, "path(X, Y)"), kNodes, 1);
  MustPrepareServe(&par, "path(X, Y)");
  std::vector<serve::ServeAnswer> a = MustExecute(&seq, batch);
  std::vector<serve::ServeAnswer> b = MustExecute(&par, batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::string> rows_a = a[i].rows;
    std::vector<std::string> rows_b = b[i].rows;
    std::sort(rows_a.begin(), rows_a.end());
    std::sort(rows_b.begin(), rows_b.end());
    auto truth = session->Query("path(" + batch[i].params[0].second +
                                ", Y)");
    if (!truth.ok()) std::abort();
    if (rows_a != rows_b || a[i].checksum != b[i].checksum ||
        rows_a.size() != truth->size()) {
      std::fprintf(stderr,
                   "bench_serving: answers diverge on %s (seq %zu, "
                   "par %zu, ground truth %zu)\n",
                   batch[i].params[0].second.c_str(), rows_a.size(),
                   rows_b.size(), truth->size());
      std::abort();
    }
  }
}

void BM_ServeThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto session = MustLoad(TcSource(kNodes));
  MustEvaluate(session.get());
  serve::SnapshotRegistry registry;
  auto snap = session->Freeze();
  if (!snap.ok()) std::abort();
  registry.Publish(*snap);
  VerifyServingEquivalence(session.get(), &registry);

  serve::ServeOptions opts;
  opts.threads = threads;
  opts.record_answers = false;  // count + checksum only while timing
  serve::QueryServer server(&registry, opts);
  std::vector<serve::ServeRequest> batch =
      PointBatch(MustPrepareServe(&server, "path(X, Y)"), kNodes,
                 kBatchReps);

  size_t answers = 0;
  for (auto _ : state) {
    std::vector<serve::ServeAnswer> out = MustExecute(&server, batch);
    answers = 0;
    for (const serve::ServeAnswer& a : out) answers += a.count;
    benchmark::DoNotOptimize(answers);
  }
  // Only deterministic counters: the baseline compare in
  // scripts/check_bench.py is absolute, so machine-dependent rates
  // (QPS, latency percentiles) stay out of the JSON. The QPS floor is
  // the real_time min-ratio between /1 and /4 instead.
  serve::ServeStats stats = server.stats();
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["rewrites_built"] =
      static_cast<double>(stats.rewrites_built);
}
BENCHMARK(BM_ServeThreads)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// The registry hot path: pin/unpin cost a batch pays once (amortized
// over every request in it).
void BM_RegistryPinUnpin(benchmark::State& state) {
  auto session = MustLoad(TcSource(16));
  serve::SnapshotRegistry registry;
  auto snap = session->Freeze();
  if (!snap.ok()) std::abort();
  registry.Publish(*snap);
  for (auto _ : state) {
    serve::PinnedSnapshot pin = registry.Pin();
    benchmark::DoNotOptimize(pin.epoch());
  }
}
BENCHMARK(BM_RegistryPinUnpin)->Unit(benchmark::kNanosecond);

// Freeze cost: what the writer pays to publish a fresh epoch (deep
// clone of store + program + database, plus eager index catch-up).
void BM_SnapshotFreeze(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  MustEvaluate(session.get());
  for (auto _ : state) {
    auto snap = session->Freeze();
    if (!snap.ok()) std::abort();
    benchmark::DoNotOptimize(snap->get());
  }
}
BENCHMARK(BM_SnapshotFreeze)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench
