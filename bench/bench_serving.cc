// Concurrent query serving QPS over a frozen snapshot.
//
// BM_ServeThreads/N runs a fixed batch of path(n_i, Y) point queries
// through an N-lane serve::QueryServer against one published snapshot;
// every request takes the demand (magic-set) route into a private
// result database, so the lanes share nothing but the immutable
// snapshot and the batch should scale near-linearly. The CI gate
// (scripts/check_bench.py --min-ratio) requires the 4-lane batch to be
// >= 2x faster than the 1-lane batch, i.e. >= 2x QPS at 4 threads.
//
// Before measuring, the bench verifies byte-identical answers: the
// rendered rows of a 1-lane and a 4-lane server must agree request by
// request, and the answer counts must match the session's own
// sequential ground truth - it aborts on any divergence, so the QPS
// numbers can never come from wrong answers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "workloads.h"

namespace lps::bench {
namespace {

constexpr int kNodes = 96;
constexpr int kBatchReps = 4;  // requests per iteration = reps * nodes

std::string TcSource(int n) {
  return RandomGraph(n, 2 * n, 99) + TransitiveClosureRules();
}

std::vector<serve::ServeRequest> PointBatch(size_t query, int nodes,
                                            int reps) {
  std::vector<serve::ServeRequest> batch;
  batch.reserve(static_cast<size_t>(nodes) * reps);
  for (int rep = 0; rep < reps; ++rep) {
    for (int i = 0; i < nodes; ++i) {
      serve::ServeRequest req;
      req.query = query;
      req.params = {{"X", "n" + std::to_string(i)}};
      batch.push_back(std::move(req));
    }
  }
  return batch;
}

size_t MustPrepareServe(serve::QueryServer* server,
                        const std::string& goal) {
  auto id = server->Prepare(goal);
  if (!id.ok()) {
    std::fprintf(stderr, "bench_serving: Prepare failed: %s\n",
                 id.status().ToString().c_str());
    std::abort();
  }
  return *id;
}

std::vector<serve::ServeAnswer> MustExecute(
    serve::QueryServer* server,
    const std::vector<serve::ServeRequest>& batch) {
  auto answers = server->ExecuteBatch(batch);
  if (!answers.ok()) {
    std::fprintf(stderr, "bench_serving: batch failed: %s\n",
                 answers.status().ToString().c_str());
    std::abort();
  }
  for (const serve::ServeAnswer& a : *answers) {
    if (!a.status.ok()) {
      std::fprintf(stderr, "bench_serving: request failed: %s\n",
                   a.status.ToString().c_str());
      std::abort();
    }
  }
  return std::move(*answers);
}

// Aborts unless 1-lane and 4-lane servers return byte-identical
// rendered answers for every request, with counts matching the
// session's sequential ground truth.
void VerifyServingEquivalence(Session* session,
                              serve::SnapshotRegistry* registry) {
  serve::ServeOptions seq_opts;
  seq_opts.threads = 1;
  serve::ServeOptions par_opts;
  par_opts.threads = 4;
  serve::QueryServer seq(registry, seq_opts);
  serve::QueryServer par(registry, par_opts);
  std::vector<serve::ServeRequest> batch =
      PointBatch(MustPrepareServe(&seq, "path(X, Y)"), kNodes, 1);
  MustPrepareServe(&par, "path(X, Y)");
  std::vector<serve::ServeAnswer> a = MustExecute(&seq, batch);
  std::vector<serve::ServeAnswer> b = MustExecute(&par, batch);
  for (size_t i = 0; i < batch.size(); ++i) {
    std::vector<std::string> rows_a = a[i].rows;
    std::vector<std::string> rows_b = b[i].rows;
    std::sort(rows_a.begin(), rows_a.end());
    std::sort(rows_b.begin(), rows_b.end());
    auto truth = session->Query("path(" + batch[i].params[0].second +
                                ", Y)");
    if (!truth.ok()) std::abort();
    if (rows_a != rows_b || a[i].checksum != b[i].checksum ||
        rows_a.size() != truth->size()) {
      std::fprintf(stderr,
                   "bench_serving: answers diverge on %s (seq %zu, "
                   "par %zu, ground truth %zu)\n",
                   batch[i].params[0].second.c_str(), rows_a.size(),
                   rows_b.size(), truth->size());
      std::abort();
    }
  }
}

void BM_ServeThreads(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  auto session = MustLoad(TcSource(kNodes));
  MustEvaluate(session.get());
  serve::SnapshotRegistry registry;
  auto snap = session->Freeze();
  if (!snap.ok()) std::abort();
  registry.Publish(*snap);
  VerifyServingEquivalence(session.get(), &registry);

  serve::ServeOptions opts;
  opts.threads = threads;
  opts.record_answers = false;  // count + checksum only while timing
  serve::QueryServer server(&registry, opts);
  std::vector<serve::ServeRequest> batch =
      PointBatch(MustPrepareServe(&server, "path(X, Y)"), kNodes,
                 kBatchReps);

  size_t answers = 0;
  for (auto _ : state) {
    std::vector<serve::ServeAnswer> out = MustExecute(&server, batch);
    answers = 0;
    for (const serve::ServeAnswer& a : out) answers += a.count;
    benchmark::DoNotOptimize(answers);
  }
  // Only deterministic counters: the baseline compare in
  // scripts/check_bench.py is absolute, so machine-dependent rates
  // (QPS, latency percentiles) stay out of the JSON. The QPS floor is
  // the real_time min-ratio between /1 and /4 instead.
  serve::ServeStats stats = server.stats();
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["rewrites_built"] =
      static_cast<double>(stats.rewrites_built);
}
BENCHMARK(BM_ServeThreads)->Arg(1)->Arg(2)->Arg(4)
    ->UseRealTime()->Unit(benchmark::kMillisecond);

// The registry hot path: pin/unpin cost a batch pays once (amortized
// over every request in it).
void BM_RegistryPinUnpin(benchmark::State& state) {
  auto session = MustLoad(TcSource(16));
  serve::SnapshotRegistry registry;
  auto snap = session->Freeze();
  if (!snap.ok()) std::abort();
  registry.Publish(*snap);
  for (auto _ : state) {
    serve::PinnedSnapshot pin = registry.Pin();
    benchmark::DoNotOptimize(pin.epoch());
  }
}
BENCHMARK(BM_RegistryPinUnpin)->Unit(benchmark::kNanosecond);

// ---- Copy-on-write republication (Session::FreezeIncremental) --------
//
// The republish workload: kShards independent transitive-closure
// shards; every iteration a MutationBatch toggles kChurnEdges extra
// edges inside shard 0 (~1% of the EDB) over already-interned
// constants and re-converges incrementally, then the writer publishes
// a fresh snapshot. BM_RepublishFull pays the deep Freeze() clone of
// all shards; BM_RepublishIncremental chains FreezeIncremental, which
// re-clones only the two touched relations (edge0/path0) and aliases
// everything else - publish cost proportional to the delta. The CI
// gate (check_bench.py --min-ratio) requires incremental republish to
// be >= 5x faster; before any timing, VerifyRepublishEquivalence
// aborts unless the COW snapshot is byte-identical to a deep-clone
// freeze of the same state and actually shared the untouched shards.

constexpr int kShards = 64;
constexpr int kShardNodes = 32;
constexpr int kShardEdges = 64;
constexpr int kChurnEdges = 40;  // ~1% of kShards * kShardEdges facts

// Toggle churn is state-cycling physically as well as logically:
// retraction tombstones a row but keeps its dedup entry, so the next
// insert of the same tuple revives the row in place and the touched
// shard's arena stays flat at any churn depth. The benchmarks
// therefore run unpinned (framework time-targeting), which
// bench_storage's BM_RelationToggleChurn locks in at the storage
// layer.

std::unique_ptr<Session> MustLoadIncremental(const std::string& source) {
  Options opt;
  opt.incremental = true;
  auto session = std::make_unique<Session>(LanguageMode::kLDL, opt);
  Status st = session->Load(source);
  if (st.ok()) st = session->Compile();
  if (!st.ok()) {
    std::fprintf(stderr, "bench_serving: load failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  return session;
}

// The churn set: kChurnEdges shard-0 edges absent from the base graph
// (the base random edges use seed 7; these use disjoint high node
// pairings from seed 1234 checked against nothing - collisions with a
// base edge would only make the toggle a no-op for that edge, which
// the referee would still verify as correct, so determinism is what
// matters, not disjointness).
std::vector<std::pair<std::string, std::string>> ChurnSet() {
  Rng rng(1234);
  std::vector<std::pair<std::string, std::string>> edges;
  edges.reserve(kChurnEdges);
  for (int i = 0; i < kChurnEdges; ++i) {
    edges.emplace_back(
        "s0_n" + std::to_string(rng.Below(kShardNodes)),
        "s0_n" + std::to_string(rng.Below(kShardNodes)));
  }
  return edges;
}

// One churn commit: inserts the churn set when *present is false,
// retracts it when true. Alternating cycles the database between two
// fixed logical states at a fixed arena size (re-adding revives the
// tombstoned rows in place).
void Churn(Session* session, bool* present) {
  TermStore* store = session->store();
  MutationBatch batch = session->Mutate();
  for (const auto& [a, b] : ChurnSet()) {
    Tuple args{store->MakeConstant(a), store->MakeConstant(b)};
    Status st = *present ? batch.Retract("edge0", std::move(args))
                         : batch.Add("edge0", std::move(args));
    if (!st.ok()) {
      std::fprintf(stderr, "bench_serving: churn stage failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
  }
  Status st = batch.Commit();
  if (!st.ok()) {
    std::fprintf(stderr, "bench_serving: churn commit failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  *present = !*present;
}

// Referee: after one churn commit, a FreezeIncremental snapshot must
// render the database byte-identically to a deep-clone Freeze of the
// same session state, share every untouched shard, and share the term
// store. Aborts before any timing happens.
void VerifyRepublishEquivalence(Session* session) {
  auto base = session->Freeze();
  if (!base.ok()) std::abort();
  bool present = false;
  Churn(session, &present);
  auto inc = session->FreezeIncremental(*base);
  auto full = session->Freeze();
  if (!inc.ok() || !full.ok()) std::abort();
  const std::string a =
      (*inc)->database().ToCanonicalString((*inc)->signature());
  const std::string b =
      (*full)->database().ToCanonicalString((*full)->signature());
  if (a != b) {
    std::fprintf(stderr,
                 "bench_serving: COW snapshot diverges from deep "
                 "freeze (%zu vs %zu rendered bytes)\n",
                 a.size(), b.size());
    std::abort();
  }
  const serve::CowStats& cow = (*inc)->cow_stats();
  // Churn touches edge0 and path0; every other shard's two relations
  // must be physically shared, no new term was interned, and the
  // churn (tail-resident fact adds) left every sealed EDB fact chunk
  // aliased from the base snapshot.
  const size_t min_shared = 2 * (kShards - 1);
  if (cow.relations_shared < min_shared || !cow.store_shared ||
      cow.bytes_shared == 0 || cow.fact_chunks_shared == 0) {
    std::fprintf(stderr,
                 "bench_serving: expected COW sharing witnesses "
                 "(shared %zu < %zu, store_shared %d, "
                 "fact_chunks_shared %zu)\n",
                 cow.relations_shared, min_shared,
                 static_cast<int>(cow.store_shared),
                 cow.fact_chunks_shared);
    std::abort();
  }
  // Undo the referee's churn so both benchmarks start from the base
  // state.
  Churn(session, &present);
}

std::unique_ptr<Session> RepublishSession() {
  auto session =
      MustLoadIncremental(ShardedTcSource(kShards, kShardNodes,
                                          kShardEdges, 7));
  MustEvaluate(session.get());
  VerifyRepublishEquivalence(session.get());
  return session;
}

void BM_RepublishFull(benchmark::State& state) {
  auto session = RepublishSession();
  bool present = false;
  for (auto _ : state) {
    Churn(session.get(), &present);
    const auto t0 = std::chrono::steady_clock::now();
    auto snap = session->Freeze();
    const auto t1 = std::chrono::steady_clock::now();
    if (!snap.ok()) std::abort();
    benchmark::DoNotOptimize(snap->get());
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
  }
}
BENCHMARK(BM_RepublishFull)->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

void BM_RepublishIncremental(benchmark::State& state) {
  auto session = RepublishSession();
  bool present = false;
  // Seed the chain with an untimed deep freeze: the benchmark measures
  // steady-state republication, not the first publish (which has no
  // prev to share with and degrades to a full freeze by design).
  auto seed = session->Freeze();
  if (!seed.ok()) std::abort();
  std::shared_ptr<const serve::Snapshot> prev = *seed;
  size_t relations_shared = 0;
  size_t bytes_shared = 0;
  for (auto _ : state) {
    Churn(session.get(), &present);
    const auto t0 = std::chrono::steady_clock::now();
    auto snap = session->FreezeIncremental(prev);
    const auto t1 = std::chrono::steady_clock::now();
    if (!snap.ok()) std::abort();
    prev = *snap;
    relations_shared = prev->cow_stats().relations_shared;
    bytes_shared = prev->cow_stats().bytes_shared;
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
  }
  // Deterministic steady-state sharing witnesses (every iteration
  // shares the untouched shards with its predecessor).
  state.counters["relations_shared"] =
      static_cast<double>(relations_shared);
  state.counters["bytes_shared"] = static_cast<double>(bytes_shared);
}
BENCHMARK(BM_RepublishIncremental)->UseManualTime()
    ->Unit(benchmark::kMicrosecond);

// Freeze cost: what the writer pays to publish a fresh epoch (deep
// clone of store + program + database, plus eager index catch-up).
void BM_SnapshotFreeze(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  MustEvaluate(session.get());
  for (auto _ : state) {
    auto snap = session->Freeze();
    if (!snap.ok()) std::abort();
    benchmark::DoNotOptimize(snap->get());
  }
}
BENCHMARK(BM_SnapshotFreeze)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench
