// E15: the point of the Session API - compile-once/execute-many. The
// ad-hoc string path (Engine::Query / Session::Query) re-parses,
// re-validates and re-plans the goal text on every call; a
// PreparedQuery pays that once at Prepare() time and then only
// executes. Expected shape: prepared execution beats the string path
// by well over 2x on point lookups (where execution is an index probe)
// and the gap narrows as the answer set grows (execution cost
// dominates); parameter re-binding costs nothing beyond a hash-map
// insert.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

std::string PathWorkload(int n) {
  return ChainGraph(n) + TransitiveClosureRules();
}

// Ground point query, ad hoc: one parse per call.
void BM_PointQueryAdhocString(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  std::string goal = "path(n0, n" + std::to_string(n) + ")";
  for (auto _ : state) {
    auto rows = session->Query(goal);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
  state.counters["parses"] =
      static_cast<double>(session->parse_count());
}
BENCHMARK(BM_PointQueryAdhocString)->Arg(64)->Arg(256)->Arg(1024);

// The same ground point query through a PreparedQuery handle.
void BM_PointQueryPrepared(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  PreparedQuery q =
      MustPrepare(session.get(), "path(n0, n" + std::to_string(n) + ")");
  for (auto _ : state) {
    auto holds = q.Holds();
    if (!holds.ok()) {
      state.SkipWithError(holds.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*holds);
  }
  state.counters["parses"] =
      static_cast<double>(session->parse_count());
}
BENCHMARK(BM_PointQueryPrepared)->Arg(64)->Arg(256)->Arg(1024);

// Open query (one bound column, streamed answer set), ad hoc.
void BM_OpenQueryAdhocString(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  size_t answers = 0;
  for (auto _ : state) {
    auto rows = session->Query("path(n0, X)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    answers = rows->size();
    benchmark::DoNotOptimize(*rows);
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_OpenQueryAdhocString)->Arg(64)->Arg(256)->Arg(1024);

// The same open query through a PreparedQuery + AnswerCursor.
void BM_OpenQueryPrepared(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  PreparedQuery q = MustPrepare(session.get(), "path(n0, X)");
  size_t answers = 0;
  for (auto _ : state) {
    auto cursor = q.Execute();
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    auto count = cursor->Count();
    if (!count.ok()) {
      state.SkipWithError(count.status().ToString().c_str());
      return;
    }
    answers = *count;
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_OpenQueryPrepared)->Arg(64)->Arg(256)->Arg(1024);

// Server pattern: one prepared goal, a different parameter binding per
// request. The ad-hoc equivalent rebuilds and re-parses the goal text.
void BM_ParamQueryAdhocString(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  int i = 0;
  for (auto _ : state) {
    std::string goal = "path(n" + std::to_string(i % n) + ", X)";
    i += 7;
    auto rows = session->Query(goal);
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_ParamQueryAdhocString)->Arg(256);

void BM_ParamQueryPrepared(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  PreparedQuery q = MustPrepare(session.get(), "path(X, Y)");
  // Interned once; Bind is a hash-map insert per request.
  std::vector<TermId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(
        session->store()->MakeConstant("n" + std::to_string(i)));
  }
  int i = 0;
  for (auto _ : state) {
    if (!q.Bind("X", nodes[i % n]).ok()) {
      state.SkipWithError("bind failed");
      return;
    }
    i += 7;
    auto cursor = q.Execute();
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    auto count = cursor->Count();
    if (!count.ok()) {
      state.SkipWithError(count.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*count);
  }
}
BENCHMARK(BM_ParamQueryPrepared)->Arg(256);

// Streaming vs materializing: pull only the first answer of a large
// result set. The cursor stops scanning after one match; the string
// path materializes everything first.
void BM_FirstAnswerAdhocString(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  for (auto _ : state) {
    auto rows = session->Query("path(X, Y)");
    if (!rows.ok() || rows->empty()) {
      state.SkipWithError("query failed");
      return;
    }
    benchmark::DoNotOptimize(rows->front());
  }
}
BENCHMARK(BM_FirstAnswerAdhocString)->Arg(256);

void BM_FirstAnswerPreparedCursor(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  auto session = MustLoad(PathWorkload(n), LanguageMode::kLPS);
  MustEvaluate(session.get());
  PreparedQuery q = MustPrepare(session.get(), "path(X, Y)");
  for (auto _ : state) {
    auto cursor = q.Execute();
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    Tuple t;
    if (!cursor->Next(&t)) {
      state.SkipWithError("no answers");
      return;
    }
    benchmark::DoNotOptimize(t);
  }
}
BENCHMARK(BM_FirstAnswerPreparedCursor)->Arg(256);

// Repeated top-down solving of the paper's BOM rollup (Example 6):
// prepared vs string path, goal solved per "request".
void BM_TopDownAdhocString(benchmark::State& state) {
  auto session =
      MustLoad(BomCatalog(16, 4, 32, 7) + R"(
        sum_costs({}, 0).
        sum_costs(Z, K) :- schoose(Z, P, Rest), cost(P, M),
                           sum_costs(Rest, N), add(M, N, K).
        obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).
      )",
               LanguageMode::kLPS);
  for (auto _ : state) {
    auto rows = session->SolveTopDown("obj_cost(obj0, N)");
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_TopDownAdhocString);

void BM_TopDownPrepared(benchmark::State& state) {
  auto session =
      MustLoad(BomCatalog(16, 4, 32, 7) + R"(
        sum_costs({}, 0).
        sum_costs(Z, K) :- schoose(Z, P, Rest), cost(P, M),
                           sum_costs(Rest, N), add(M, N, K).
        obj_cost(X, N) :- parts(X, Y), sum_costs(Y, N).
      )",
               LanguageMode::kLPS);
  PreparedQuery q = MustPrepare(session.get(), "obj_cost(obj0, N)");
  for (auto _ : state) {
    auto cursor = q.SolveTopDown();
    if (!cursor.ok()) {
      state.SkipWithError(cursor.status().ToString().c_str());
      return;
    }
    auto rows = cursor->ToVector();
    if (!rows.ok()) {
      state.SkipWithError(rows.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(*rows);
  }
}
BENCHMARK(BM_TopDownPrepared);

}  // namespace
}  // namespace lps::bench
