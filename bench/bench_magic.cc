// Demand (magic-set) evaluation vs the full fixpoint on point queries
// over the TcRandom workload, plus the all-free no-regression guard.
//
// BM_TcFullPoint measures the pre-PR answer path for a point query:
// evaluate the whole transitive closure, then scan. BM_TcMagicPoint
// measures the demand path: every iteration re-runs the rewritten
// program from the EDB in a private database (the rewrite itself is
// cached on the prepared query). The `tuples_derived` counters feed
// the CI ratio gates in scripts/check_bench.py: magic must derive
// >= 5x fewer tuples and run >= 2x faster, with identical answers
// (verified here before measuring - the bench aborts on divergence).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "workloads.h"

namespace lps::bench {
namespace {

std::string TcSource(int n) {
  return RandomGraph(n, 2 * n, 99) + TransitiveClosureRules();
}

std::vector<std::string> SortedAnswers(Session* session,
                                       PreparedQuery* query,
                                       bool demand) {
  auto cursor = demand ? query->ExecuteDemand() : query->Execute();
  if (!cursor.ok()) {
    std::fprintf(stderr, "bench query failed: %s\n",
                 cursor.status().ToString().c_str());
    std::abort();
  }
  auto rows = cursor->ToVector();
  if (!rows.ok()) {
    std::fprintf(stderr, "bench cursor failed: %s\n",
                 rows.status().ToString().c_str());
    std::abort();
  }
  std::vector<std::string> out;
  for (const Tuple& t : *rows) out.push_back(session->TupleToString(t));
  std::sort(out.begin(), out.end());
  return out;
}

// Aborts unless demand and full-fixpoint answers agree exactly.
void VerifyEquivalence(int n, const std::string& goal) {
  auto full = MustLoad(TcSource(n));
  MustEvaluate(full.get());
  auto fq = MustPrepare(full.get(), goal);
  auto full_answers = SortedAnswers(full.get(), &fq, false);

  auto demand = MustLoad(TcSource(n));
  auto dq = MustPrepare(demand.get(), goal);
  auto demand_answers = SortedAnswers(demand.get(), &dq, true);

  if (full_answers != demand_answers) {
    std::fprintf(stderr,
                 "bench_magic: demand answers diverge from full fixpoint "
                 "on %s over TcRandom/%d (%zu vs %zu answers)\n",
                 goal.c_str(), n, demand_answers.size(),
                 full_answers.size());
    std::abort();
  }
}

void BM_TcFullPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  auto query = MustPrepare(session.get(), "path(n0, X)");
  size_t tuples = 0, answers = 0;
  for (auto _ : state) {
    session->ResetDatabase();
    MustEvaluate(session.get());
    auto count = query.Execute()->Count();
    if (!count.ok()) std::abort();
    answers = *count;
    tuples = session->eval_stats().tuples_derived;
  }
  state.counters["tuples_derived"] = static_cast<double>(tuples);
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_TcFullPoint)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

void BM_TcMagicPoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  VerifyEquivalence(n, "path(n0, X)");
  auto session = MustLoad(TcSource(n));
  auto query = MustPrepare(session.get(), "path(n0, X)");
  size_t tuples = 0, answers = 0;
  for (auto _ : state) {
    // Each execution re-seeds and re-evaluates the cached rewrite in a
    // fresh private database - the steady-state point-query cost.
    auto cursor = query.ExecuteDemand();
    if (!cursor.ok()) std::abort();
    auto count = cursor->Count();
    if (!count.ok()) std::abort();
    answers = *count;
    tuples = session->eval_stats().tuples_derived;
  }
  state.counters["tuples_derived"] = static_cast<double>(tuples);
  state.counters["answers"] = static_cast<double>(answers);
  state.counters["magic_tuples"] = static_cast<double>(
      session->eval_stats().magic_tuples);
}
BENCHMARK(BM_TcMagicPoint)->Arg(64)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);

// All-free goals must not regress under demand mode: Execute() takes
// exactly the legacy lazy-scan path (no rewrite, no re-evaluation).
void BM_TcAllFreeDemand(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Options options;
  options.demand = true;
  auto session = MustLoad(TcSource(n));
  session->set_options(options);
  MustEvaluate(session.get());
  auto query = MustPrepare(session.get(), "path(X, Y)");
  size_t answers = 0;
  for (auto _ : state) {
    auto count = query.Execute()->Count();
    if (!count.ok()) std::abort();
    answers = *count;
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_TcAllFreeDemand)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Reference for the all-free guard: the same scan with demand off.
void BM_TcAllFreeScan(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  MustEvaluate(session.get());
  auto query = MustPrepare(session.get(), "path(X, Y)");
  size_t answers = 0;
  for (auto _ : state) {
    auto count = query.Execute()->Count();
    if (!count.ok()) std::abort();
    answers = *count;
  }
  state.counters["answers"] = static_cast<double>(answers);
}
BENCHMARK(BM_TcAllFreeScan)->Arg(64)->Arg(128)
    ->Unit(benchmark::kMillisecond);

// Rewrite construction cost (amortized away by the per-pattern cache
// in steady state, but worth tracking).
void BM_MagicRewriteBuild(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto session = MustLoad(TcSource(n));
  auto query = MustPrepare(session.get(), "path(n0, X)");
  std::vector<bool> bound{true, false};
  for (auto _ : state) {
    auto rw = MagicRewrite(*session->program(), query.goal(), bound);
    if (!rw.ok() || !(*rw).applied) std::abort();
    benchmark::DoNotOptimize((*rw).rewrite);
  }
}
BENCHMARK(BM_MagicRewriteBuild)->Arg(128)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace lps::bench
