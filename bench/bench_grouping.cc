// Set-heavy grouping workloads (Definition 14): follower-set
// materialization (grouping over one EDB scan and over a self-join)
// and the BOM subpart-set explosion (recursive closure feeding a
// grouping head).
//
// Expected shape: single-lane wall time is dominated by the grouping
// accumulator and set interning (the arena group-by and the dedicated
// canonical-set intern table are what this bench gates); the *Threads
// variants shard the grouping body scan across worker lanes and must
// produce byte-identical databases at every lane count.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

void RunGrouping(benchmark::State& state, const std::string& source,
                 size_t threads) {
  EvalStats stats;
  for (auto _ : state) {
    state.PauseTiming();
    auto session = MustLoad(source, LanguageMode::kLDL);
    state.ResumeTiming();
    Options opts;
    opts.threads = threads;
    opts.max_tuples = 10000000;
    opts.max_iterations = 1000000;
    stats = MustEvaluate(session.get(), opts);
  }
  state.counters["tuples"] = static_cast<double>(stats.tuples_derived);
  state.counters["groups_emitted"] =
      static_cast<double>(stats.groups_emitted);
  state.counters["group_elements"] =
      static_cast<double>(stats.group_elements);
  state.counters["set_interns"] = static_cast<double>(stats.set_interns);
  state.counters["set_intern_hits"] =
      static_cast<double>(stats.set_intern_hits);
}

// Follower-set materialization: one group per followed user, one
// element per follow edge. Group count and element volume both scale
// with the graph.
void BM_FollowerSets(benchmark::State& state) {
  int users = static_cast<int>(state.range(0));
  RunGrouping(state, FollowerGraph(users, 8 * users, 42) +
                         FollowerSetRules(),
              1);
}
BENCHMARK(BM_FollowerSets)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond);

// The same materialization with the grouping body scan sharded across
// worker lanes (merge order keeps the output byte-identical).
void BM_FollowerSetsThreads(benchmark::State& state) {
  RunGrouping(state, FollowerGraph(4096, 8 * 4096, 42) +
                         FollowerSetRules(),
              static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_FollowerSetsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Follower-of-follower sets: the grouping body is a self-join, so the
// per-group element streams are long and heavily duplicated - the
// worst case for the accumulator and the best case for canonical-set
// dedup.
void BM_FofSets(benchmark::State& state) {
  int users = static_cast<int>(state.range(0));
  RunGrouping(state, FollowerGraph(users, 6 * users, 7) +
                         FollowerOfFollowerRules(),
              1);
}
BENCHMARK(BM_FofSets)->Arg(128)->Arg(512)->Unit(benchmark::kMillisecond);

void BM_FofSetsThreads(benchmark::State& state) {
  RunGrouping(state, FollowerGraph(512, 6 * 512, 7) +
                         FollowerOfFollowerRules(),
              static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_FofSetsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// BOM subpart-set explosion: recursive closure over the assembly DAG
// (sharded delta joins) feeding a grouping head that materializes one
// part set per object.
void BM_BomSubpartSets(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  RunGrouping(state, BomAssembly(objects, 6, 4 * objects, 9) +
                         BomSubpartSetRules(),
              1);
}
BENCHMARK(BM_BomSubpartSets)
    ->Arg(64)
    ->Arg(192)
    ->Unit(benchmark::kMillisecond);

void BM_BomSubpartSetsThreads(benchmark::State& state) {
  RunGrouping(state, BomAssembly(192, 6, 4 * 192, 9) +
                         BomSubpartSetRules(),
              static_cast<size_t>(state.range(0)));
}
BENCHMARK(BM_BomSubpartSetsThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
