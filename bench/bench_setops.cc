// E14 ablation: hash-consed canonical sets vs a non-interned baseline.
//
// Expected shape: construction costs are similar (both sort), but
// equality on interned sets is O(1) id comparison vs O(n) deep
// comparison, and repeated construction of the same set is amortized to
// a hash lookup.
#include <benchmark/benchmark.h>

#include <algorithm>

#include "workloads.h"

namespace lps::bench {
namespace {

// --- interned -------------------------------------------------------

void BM_InternedConstruct(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  Rng rng(7);
  for (auto _ : state) {
    TermId s = MakeRandomSet(&store, n, 1 << 20, &rng);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InternedConstruct)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

// Re-creating an identical set hits the interner.
void BM_InternedReconstructSame(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  std::vector<TermId> elems;
  for (int i = 0; i < n; ++i) elems.push_back(store.MakeInt(i));
  for (auto _ : state) {
    TermId s = store.MakeSet(elems);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_InternedReconstructSame)->Arg(4)->Arg(64)->Arg(256);

void BM_InternedEquality(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  TermId a = MakeIntRangeSet(&store, n);
  TermId b = MakeIntRangeSet(&store, n);
  for (auto _ : state) {
    bool eq = (a == b);  // =s is id comparison (Definition 3.2c)
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_InternedEquality)->Arg(4)->Arg(64)->Arg(1024);

void BM_InternedUnion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  Rng rng(11);
  TermId a = MakeRandomSet(&store, n, 4 * n, &rng);
  TermId b = MakeRandomSet(&store, n, 4 * n, &rng);
  for (auto _ : state) {
    TermId u = SetUnion(&store, a, b);
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_InternedUnion)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_InternedSubset(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  TermStore store;
  TermId big = MakeIntRangeSet(&store, n);
  TermId small = MakeIntRangeSet(&store, n / 2);
  for (auto _ : state) {
    bool sub = SetIsSubset(store, small, big);
    benchmark::DoNotOptimize(sub);
  }
}
BENCHMARK(BM_InternedSubset)->Arg(4)->Arg(64)->Arg(1024);

// --- non-interned baseline (plain sorted vectors, deep compare) ------

using RawSet = std::vector<int64_t>;

RawSet MakeRawSet(int cardinality, int universe, Rng* rng) {
  RawSet s;
  s.reserve(cardinality);
  for (int i = 0; i < cardinality; ++i) {
    s.push_back(static_cast<int64_t>(rng->Below(universe)));
  }
  std::sort(s.begin(), s.end());
  s.erase(std::unique(s.begin(), s.end()), s.end());
  return s;
}

void BM_RawConstruct(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    RawSet s = MakeRawSet(n, 1 << 20, &rng);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RawConstruct)->Arg(4)->Arg(16)->Arg(64)->Arg(256);

void BM_RawEquality(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RawSet a, b;
  for (int i = 0; i < n; ++i) {
    a.push_back(i);
    b.push_back(i);
  }
  for (auto _ : state) {
    bool eq = (a == b);  // deep comparison every time
    benchmark::DoNotOptimize(eq);
  }
}
BENCHMARK(BM_RawEquality)->Arg(4)->Arg(64)->Arg(1024);

void BM_RawUnion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(11);
  RawSet a = MakeRawSet(n, 4 * n, &rng);
  RawSet b = MakeRawSet(n, 4 * n, &rng);
  for (auto _ : state) {
    RawSet u;
    std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                   std::back_inserter(u));
    benchmark::DoNotOptimize(u);
  }
  state.SetItemsProcessed(state.iterations() * 2 * n);
}
BENCHMARK(BM_RawUnion)->Arg(4)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
