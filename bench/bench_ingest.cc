// Parallel bulk-ingest lane scaling (Session::LoadFactsParallel).
//
// BM_IngestLanes/N bulk-loads the 10M-edge clustered social graph
// (SocialFollows, the examples/social_graph.cc workload) into a fresh
// session on N parser lanes and reports the load wall time plus the
// deterministic ingest counters. The CI gate (scripts/check_bench.py
// --min-ratio) requires the 8-lane load to beat the 1-lane load by
// the committed floor - the parse phase parallelizes embarrassingly
// while the order-sensitive merge passes stay sequential, so the
// achievable ratio is Amdahl-bound by the merge fraction (DESIGN.md
// section 19).
//
// Before any timing, VerifyIngestEquivalence bulk-loads a smaller
// slice of the same workload at lanes {1, 2, 4, 8} and aborts unless
// each result is byte-identical (ToString - insertion order included
// - and ToCanonicalString) to a sequential Load + Evaluate of the
// same text, so the speedup can never come from a wrong merge.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "workloads.h"

namespace lps::bench {
namespace {

// ~10.2M follows() edges, ~276 MB of text: the ROADMAP item 5 scale.
constexpr size_t kBenchUsers = 3'400'000;
// Referee slice: big enough to split into many chunks per lane and
// to exercise presizing, small enough to re-load five times quickly.
constexpr size_t kRefereeUsers = 50'000;

const std::string& BenchFacts() {
  static const std::string* facts =
      new std::string(SocialFollows(kBenchUsers));
  return *facts;
}

// Aborts unless parallel loads reproduce the sequential load
// byte-for-byte at every lane count.
void VerifyIngestEquivalence() {
  const std::string facts = SocialFollows(kRefereeUsers);
  Session seq(LanguageMode::kLDL);
  Status st = seq.Load(facts);
  if (st.ok()) st = seq.Evaluate();
  if (!st.ok()) {
    std::fprintf(stderr, "bench_ingest: sequential load failed: %s\n",
                 st.ToString().c_str());
    std::abort();
  }
  const std::string want = seq.database()->ToString(*seq.signature());
  for (size_t lanes : {1, 2, 4, 8}) {
    Session par(LanguageMode::kLDL);
    st = par.LoadFactsParallel(facts, lanes);
    if (st.ok()) st = par.Evaluate();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_ingest: %zu-lane load failed: %s\n",
                   lanes, st.ToString().c_str());
      std::abort();
    }
    if (par.database()->ToString(*par.signature()) != want ||
        par.database()->ToCanonicalString(*par.signature()) !=
            seq.database()->ToCanonicalString(*seq.signature())) {
      std::fprintf(stderr,
                   "bench_ingest: %zu-lane load diverges from the "
                   "sequential load\n",
                   lanes);
      std::abort();
    }
  }
}

void BM_IngestLanes(benchmark::State& state) {
  static const bool verified = [] {
    VerifyIngestEquivalence();
    return true;
  }();
  (void)verified;
  const size_t lanes = static_cast<size_t>(state.range(0));
  const std::string& facts = BenchFacts();

  EvalStats::IngestStats ig;
  for (auto _ : state) {
    Session session(LanguageMode::kLDL);
    const auto t0 = std::chrono::steady_clock::now();
    Status st = session.LoadFactsParallel(facts, lanes);
    const auto t1 = std::chrono::steady_clock::now();
    if (!st.ok()) {
      std::fprintf(stderr, "bench_ingest: load failed: %s\n",
                   st.ToString().c_str());
      std::abort();
    }
    ig = session.eval_stats().ingest;
    state.SetIterationTime(
        std::chrono::duration<double>(t1 - t0).count());
  }
  // Only deterministic counters go into the committed baseline (the
  // compare in scripts/check_bench.py is absolute): fact counts are
  // lane-independent, chunk/scratch counts are fixed for a given lane
  // count, and the byte-identity referee above pins the semantics.
  state.counters["facts_parsed"] = static_cast<double>(ig.facts_parsed);
  state.counters["facts_inserted"] =
      static_cast<double>(ig.facts_inserted);
  state.counters["chunks"] = static_cast<double>(ig.chunks);
  state.counters["scratch_terms"] =
      static_cast<double>(ig.scratch_terms);
}
// One iteration per lane count: a 10M-edge load runs tens of seconds,
// and the lane-scaling ratio (not run-to-run noise) is what the gate
// consumes; manual time keeps session teardown out of the figure.
BENCHMARK(BM_IngestLanes)->Arg(1)->Arg(8)
    ->UseManualTime()->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench
