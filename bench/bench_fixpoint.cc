// E5b / E14, Theorem 5: naive vs semi-naive iteration to the same
// fixpoint. Expected shape: on recursive workloads (transitive closure
// over chains and random graphs) semi-naive does O(paths) work while
// naive re-derives everything every round: the gap grows with the
// chain length.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

void RunTc(benchmark::State& state, const std::string& facts,
           bool semi_naive) {
  std::string source = facts + TransitiveClosureRules();
  size_t tuples = 0, rule_runs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    Options opts;
    opts.semi_naive = semi_naive;
    // This file benchmarks the iteration machinery itself. The
    // cost-based join order probes the growing recursive relation and
    // collapses chain closures into round 0 (DESIGN.md section 17),
    // which would measure the planner, not the naive/semi-naive gap -
    // bench_planner owns that comparison.
    opts.reorder = false;
    opts.max_tuples = 10000000;
    opts.max_iterations = 1000000;
    EvalStats stats = MustEvaluate(engine.get(), opts);
    tuples = stats.tuples_derived;
    rule_runs = stats.rule_runs;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["rule_runs"] = static_cast<double>(rule_runs);
}

void BM_TcChainNaive(benchmark::State& state) {
  RunTc(state, ChainGraph(static_cast<int>(state.range(0))), false);
}
BENCHMARK(BM_TcChainNaive)->Arg(16)->Arg(64)->Arg(128);

void BM_TcChainSemiNaive(benchmark::State& state) {
  RunTc(state, ChainGraph(static_cast<int>(state.range(0))), true);
}
BENCHMARK(BM_TcChainSemiNaive)->Arg(16)->Arg(64)->Arg(128)->Arg(512);

void BM_TcRandomNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunTc(state, RandomGraph(n, 2 * n, 99), false);
}
BENCHMARK(BM_TcRandomNaive)->Arg(32)->Arg(64);

void BM_TcRandomSemiNaive(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  RunTc(state, RandomGraph(n, 2 * n, 99), true);
}
BENCHMARK(BM_TcRandomSemiNaive)->Arg(32)->Arg(64)->Arg(128);

// Quantified rule with division over a growing set family: measures the
// fixpoint machinery on the paper's native construct rather than plain
// Datalog.
void RunAllq(benchmark::State& state, bool semi_naive) {
  int sets = static_cast<int>(state.range(0));
  int card = static_cast<int>(state.range(1));
  std::string source = SetFamily(sets, card, 2 * card, 5);
  for (int i = 0; i < 2 * card; i += 2) {
    source += "q(" + std::to_string(i) + ").\n";
  }
  source += "allq(X) :- s(X), forall E in X : q(E).\n";
  size_t combos = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    Options opts;
    opts.semi_naive = semi_naive;
    opts.reorder = false;  // see RunTc
    EvalStats stats = MustEvaluate(engine.get(), opts);
    combos = stats.combos_checked;
  }
  state.counters["combos"] = static_cast<double>(combos);
}

void BM_QuantifiedNaive(benchmark::State& state) {
  RunAllq(state, false);
}
BENCHMARK(BM_QuantifiedNaive)->Args({64, 8})->Args({256, 8});

void BM_QuantifiedSemiNaive(benchmark::State& state) {
  RunAllq(state, true);
}
BENCHMARK(BM_QuantifiedSemiNaive)
    ->Args({64, 8})
    ->Args({256, 8})
    ->Args({1024, 8})
    ->Args({256, 32});

// Thread scaling: the same semi-naive fixpoint with the delta joins
// sharded across N worker lanes (eval/bottomup.cc, DESIGN.md sec. 11).
// Expected shape: wall clock drops roughly linearly with lanes until
// the per-iteration merge barrier dominates; the acceptance target is
// >= 2x at 4 lanes on these workloads.
void RunScaling(benchmark::State& state, const std::string& source) {
  size_t tuples = 0, tasks = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    Options opts;
    opts.threads = static_cast<size_t>(state.range(0));
    // The lane-scaling gate measures the sharded delta phase; the
    // cost order's round-0 cascade would leave the lanes nothing to
    // shard (see RunTc).
    opts.reorder = false;
    opts.max_tuples = 10000000;
    opts.max_iterations = 1000000;
    EvalStats stats = MustEvaluate(engine.get(), opts);
    tuples = stats.tuples_derived;
    tasks = stats.parallel_tasks;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
  state.counters["parallel_tasks"] = static_cast<double>(tasks);
}

// Dense random graph: large per-iteration deltas, the best case for
// sharding.
void BM_TcRandomThreads(benchmark::State& state) {
  RunScaling(state,
             RandomGraph(192, 3 * 192, 99) + TransitiveClosureRules());
}
BENCHMARK(BM_TcRandomThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Long chain: many iterations with medium deltas, stressing the
// per-iteration fork/join barrier.
void BM_TcChainThreads(benchmark::State& state) {
  RunScaling(state, ChainGraph(384) + TransitiveClosureRules());
}
BENCHMARK(BM_TcChainThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// BOM-flavored sharding: part/descendant reachability over a forest of
// component links (flat Horn recursion like the bill-of-materials
// rollup's part graph, without the set-arithmetic builtins that pin
// rules to the coordinator).
void BM_BomReachThreads(benchmark::State& state) {
  Rng rng(1234);
  std::string src;
  constexpr int kParts = 2500;
  for (int i = 1; i < kParts; ++i) {
    src += "component(p" + std::to_string(rng.Below(i)) + ", p" +
           std::to_string(i) + ").\n";
  }
  src += "uses(X, Y) :- component(X, Y).\n";
  src += "uses(X, Z) :- uses(X, Y), component(Y, Z).\n";
  RunScaling(state, src);
}
BENCHMARK(BM_BomReachThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
