// E6, Theorem 6 / Example 9: evaluating union through the compiled
// positive-formula definition (auxiliary predicates) vs the builtin.
// Expected shape: both compute the same relation; the compiled version
// pays a constant-factor overhead per derived tuple for the auxiliary
// joins, and the builtin scales with set size while the compiled one
// scales with set size * domain checks.
#include <benchmark/benchmark.h>

#include "workloads.h"

namespace lps::bench {
namespace {

std::string UnionClosedFamily(int chains, int card) {
  // Sets {0..card-1}, {card..2card-1}, ... plus pairwise unions of
  // adjacent sets, so the compiled union relation has real positives.
  std::string out;
  auto set_of = [&](int lo, int n) {
    std::string s = "{";
    for (int i = 0; i < n; ++i) {
      if (i > 0) s += ", ";
      s += std::to_string(lo + i);
    }
    return s + "}";
  };
  for (int c = 0; c < chains; ++c) {
    out += "s(" + set_of(c * card, card) + ").\n";
  }
  for (int c = 0; c + 1 < chains; ++c) {
    out += "s(" + set_of(c * card, 2 * card) + ").\n";
  }
  out += "s({}).\n";
  return out;
}

void BM_UnionViaBuiltin(benchmark::State& state) {
  int chains = static_cast<int>(state.range(0));
  int card = static_cast<int>(state.range(1));
  std::string source = UnionClosedFamily(chains, card) +
                       "u(X, Y, Z) :- s(X), s(Y), union(X, Y, Z), s(Z).\n";
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    EvalStats stats = MustEvaluate(engine.get());
    tuples = stats.tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_UnionViaBuiltin)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Args({8, 16});

void BM_UnionViaTheorem6(benchmark::State& state) {
  int chains = static_cast<int>(state.range(0));
  int card = static_cast<int>(state.range(1));
  std::string source =
      UnionClosedFamily(chains, card) + R"(
    u(X, Y, Z) :- s(X), s(Y), s(Z),
        (forall A in X : A in Z),
        (forall B in Y : B in Z),
        (forall C in Z : (C in X ; C in Y)).
  )";
  size_t tuples = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = MustLoad(source, LanguageMode::kLPS);
    state.ResumeTiming();
    EvalStats stats = MustEvaluate(engine.get());
    tuples = stats.tuples_derived;
  }
  state.counters["tuples"] = static_cast<double>(tuples);
}
BENCHMARK(BM_UnionViaTheorem6)
    ->Args({4, 4})
    ->Args({8, 4})
    ->Args({16, 4})
    ->Args({8, 16});

// Compilation itself (Theorem 6's f(A :- B) construction): cost of
// lowering deeply alternating bodies.
void BM_CompilePositiveBody(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  TermStore store;
  Program program(&store);
  Signature* sig = &program.signature();
  PredicateId head =
      sig->Declare("h", std::vector<Sort>{Sort::kSet}).value();
  PredicateId leaf =
      sig->Declare("leaf", std::vector<Sort>{Sort::kAtom}).value();

  TermId range = store.MakeVariable("R", Sort::kSet);
  for (auto _ : state) {
    // (forall/exists alternating) over a two-way disjunction per level.
    TermId v = store.MakeFreshVariable("v", Sort::kAtom);
    FormulaPtr f = Formula::Atomic(Literal{leaf, {v}, true});
    for (int i = 0; i < depth; ++i) {
      std::vector<FormulaPtr> alts;
      alts.push_back(std::move(f));
      TermId w = store.MakeFreshVariable("w", Sort::kAtom);
      alts.push_back(Formula::Atomic(Literal{leaf, {w}, true}));
      FormulaPtr disj = Formula::Or(std::move(alts));
      TermId q = store.MakeFreshVariable("q", Sort::kAtom);
      f = (i % 2 == 0) ? Formula::Forall(q, range, std::move(disj))
                       : Formula::Exists(q, range, std::move(disj));
    }
    GeneralClause gc;
    gc.head = Literal{head, {range}, true};
    gc.body = std::move(f);
    std::vector<Clause> out;
    CompileStats stats;
    Status st = CompileGeneralClause(&store, sig, gc, &out, &stats);
    if (!st.ok()) state.SkipWithError(st.ToString().c_str());
    benchmark::DoNotOptimize(out);
    state.counters["clauses"] = static_cast<double>(out.size());
    state.counters["aux_preds"] =
        static_cast<double>(stats.aux_predicates);
  }
}
BENCHMARK(BM_CompilePositiveBody)->Arg(2)->Arg(8)->Arg(32)->Arg(128);

}  // namespace
}  // namespace lps::bench

BENCHMARK_MAIN();
