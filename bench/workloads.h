// Deterministic workload generators shared by the benchmark binaries.
// All randomness is a fixed-seed xorshift so every run measures the
// same inputs.
#ifndef LPS_BENCH_WORKLOADS_H_
#define LPS_BENCH_WORKLOADS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "lps/lps.h"

namespace lps::bench {

/// Tiny deterministic PRNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed | 1) {}
  uint64_t Next() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 7;
    state_ ^= state_ << 17;
    return state_;
  }
  /// Uniform in [0, bound).
  uint64_t Below(uint64_t bound) { return Next() % bound; }

 private:
  uint64_t state_;
};

/// edge facts forming a chain n0 -> n1 -> ... -> n_n.
std::string ChainGraph(int n);

/// edge facts of a random graph with `nodes` nodes and `edges` edges.
std::string RandomGraph(int nodes, int edges, uint64_t seed);

/// The standard transitive-closure program (rules only).
std::string TransitiveClosureRules();

/// A sharded transitive-closure universe for the copy-on-write
/// republish benchmarks (bench_serving.cc): `shards` fully independent
/// predicate families edge_s/path_s, each a random graph of `nodes`
/// nodes and `edges` edges over shard-local constants (s<i>_n<j>) with
/// its own TC rule pair. Churn confined to one shard then touches
/// exactly two relations, leaving the rest byte-identical - the shape
/// FreezeIncremental shares.
std::string ShardedTcSource(int shards, int nodes, int edges,
                            uint64_t seed);

/// follows(u<i>, u<j>) facts for a clustered social graph: users are
/// partitioned into clusters of 64 and every edge stays intra-cluster
/// (a ring, a skip ring, plus one extra pseudo-random edge per user -
/// ~3 edges/user). The bulk-ingest workload: same shape as
/// examples/social_graph.cc, sized by bench_ingest.cc at 10M edges.
std::string SocialFollows(size_t users);

/// s(...) facts: `count` random subsets of {0..universe-1}, each of the
/// given cardinality.
std::string SetFamily(int count, int cardinality, int universe,
                      uint64_t seed);

/// parts/cost facts: `objects` objects, each with a component set of
/// `cardinality` parts drawn from `universe` distinct parts with random
/// integer costs.
std::string BomCatalog(int objects, int cardinality, int universe,
                       uint64_t seed);

// ---- Set-heavy grouping workloads (bench_grouping.cc) ----------------

/// follows(F, U) facts: `users` users, `edges` random follow edges.
std::string FollowerGraph(int users, int edges, uint64_t seed);

/// Follower-set materialization (Definition 14 grouping over one EDB
/// scan): followers(U, <F>) :- follows(F, U).
std::string FollowerSetRules();

/// Follower-of-follower sets (grouping over a two-way self-join):
/// fof(U, <F2>) :- follows(F1, U), follows(F2, F1).
std::string FollowerOfFollowerRules();

/// BOM assembly facts: sub(O, S) subassembly edges forming a DAG over
/// `objects` objects plus part_of(P, O) direct-part edges drawn from
/// `universe` parts (`parts_per` each).
std::string BomAssembly(int objects, int parts_per, int universe,
                        uint64_t seed);

/// Subpart-set explosion: transitive closure over the assembly DAG,
/// then group every reachable part into one set per object:
///   uses/2 (recursive), haspart/2, partset(O, <P>).
std::string BomSubpartSetRules();

/// A ground set {0, 1, ..., n-1} of integer atoms in `store`.
TermId MakeIntRangeSet(TermStore* store, int n);

/// A ground set of `cardinality` random integers below `universe`.
TermId MakeRandomSet(TermStore* store, int cardinality, int universe,
                     Rng* rng);

/// A seeded random flat-Horn program plus a query goal, for the
/// differential-fuzz harness (fuzz_equivalence.cc): magic-rewritten,
/// full-fixpoint and top-down evaluation of `goal` must agree.
struct FuzzProgram {
  std::string source;  // facts + rules, parseable LDL
  std::string goal;    // a goal with a random binding pattern
  /// True when some rule may be (mutually) recursive. The top-down
  /// solver is documented incomplete for cyclic recursion (it cuts
  /// cycles), so the harness compares it only on !recursive seeds.
  bool recursive = false;
  /// True when the program carries a grouping rule (Definition 14).
  /// The top-down solver rejects grouping clauses, so the harness
  /// skips the top-down comparison on such seeds; magic vs full
  /// fixpoint must still agree on the set-valued answers.
  bool has_grouping = false;
};

/// Rewrites `source` with the body literals of every rule line
/// (anything containing " :- ") shuffled by a seeded Fisher-Yates.
/// Splitting respects parenthesis/brace nesting, so literal argument
/// lists survive intact. seed 0 is the identity permutation. Facts,
/// queries and non-rule lines pass through unchanged. Used by the
/// fuzzer's permutation mode: any body order must produce the same
/// model (join order is an implementation choice, not semantics).
std::string PermuteRuleBodies(const std::string& source, uint64_t seed);

/// Generates a random flat-Horn program: EDB facts over a small
/// constant pool, IDB rules whose bodies mix EDB scans, IDB calls and
/// occasional negated EDB literals (always safely ground), an optional
/// grouping layer over a binary IDB predicate (the goal then sometimes
/// demands a bound group key), and a goal whose arguments are randomly
/// bound. Even seeds are stratified DAGs (IDB bodies only reference
/// strictly earlier predicates, so top-down evaluation is complete);
/// odd seeds additionally allow recursive IDB calls. Deterministic in
/// `seed`.
FuzzProgram RandomFlatHornProgram(uint64_t seed);

/// Opens a session, loads and compiles `source`, and aborts on error
/// (benchmarks should not silently measure failures).
std::unique_ptr<Session> MustLoad(const std::string& source,
                                  LanguageMode mode = LanguageMode::kLDL);

/// Evaluates and aborts on error; returns the stats.
EvalStats MustEvaluate(Session* session, Options options = {});

/// Prepares a goal and aborts on error.
PreparedQuery MustPrepare(Session* session, const std::string& goal);

}  // namespace lps::bench

#endif  // LPS_BENCH_WORKLOADS_H_
